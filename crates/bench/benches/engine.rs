//! Criterion benchmarks for the integrated engine: end-to-end event
//! throughput with rules and a state-gated pipeline (experiments
//! E4/E5 companions).

use criterion::{criterion_group, criterion_main, Criterion};
use fenestra_base::time::Duration;
use fenestra_core::Engine;
use fenestra_stream::aggregate::AggSpec;
use fenestra_stream::graph::Graph;
use fenestra_stream::ops::state::StateGate;
use fenestra_stream::window::time::TimeWindowOp;
use fenestra_temporal::AttrSchema;
use fenestra_workloads::{ClickstreamConfig, ClickstreamWorkload};

const RULES: &str = r#"
    rule enter:
      on clicks where action == "enter"
      replace $(user).status = "active"
    rule leave:
      on clicks where action == "leave"
      if state($(user)).status == "active"
      retract $(user).status = "active"
"#;

fn workload() -> ClickstreamWorkload {
    ClickstreamWorkload::generate(&ClickstreamConfig {
        users: 50,
        sessions: 200,
        ..Default::default()
    })
}

fn bench_engine(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("engine/end_to_end");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(w.events.len() as u64));

    g.bench_function("rules_only", |b| {
        b.iter(|| {
            let mut engine = Engine::with_defaults();
            engine.declare_attr("status", AttrSchema::one());
            engine.add_rules_text(RULES).unwrap();
            engine.run(w.events.iter().cloned());
            engine.finish();
            engine.metrics().transitions
        })
    });

    g.bench_function("rules_plus_gated_pipeline", |b| {
        b.iter(|| {
            let mut engine = Engine::with_defaults();
            engine.declare_attr("status", AttrSchema::one());
            engine.add_rules_text(RULES).unwrap();
            let store = engine.shared_store();
            let mut graph = Graph::new();
            let gate = graph.add_op(StateGate::new(store, "user", "status", "active"));
            graph.connect_source("clicks", gate);
            let win = graph.add_op(
                TimeWindowOp::tumbling(Duration::secs(30))
                    .group_by(["user"])
                    .aggregate(AggSpec::count("n")),
            );
            graph.connect(gate, win);
            let sink = graph.add_sink();
            graph.connect(win, sink.node);
            engine.set_graph(graph).unwrap();
            engine.run(w.events.iter().cloned());
            engine.finish();
            sink.len()
        })
    });

    g.finish();

    // As-of query latency over the populated store (E4 companion).
    let mut engine = Engine::with_defaults();
    engine.declare_attr("status", AttrSchema::one());
    engine.add_rules_text(RULES).unwrap();
    engine.run(w.events.iter().cloned());
    engine.finish();
    let mut g = c.benchmark_group("engine/query");
    g.sample_size(30);
    g.bench_function("asof_select", |b| {
        b.iter(|| {
            engine
                .query("select ?u where { ?u status \"active\" } asof 60000")
                .unwrap()
                .len()
        })
    });
    g.bench_function("current_select", |b| {
        b.iter(|| {
            engine
                .query("select ?u where { ?u status \"active\" }")
                .unwrap()
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
