//! Criterion benchmarks for the reasoner (experiment E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fenestra_base::value::{EntityId, Value};
use fenestra_reason::materialize::{naive, seminaive};
use fenestra_reason::triple::{id_resolver, Triple};
use fenestra_reason::{Axiom, IncrementalMaterializer, Ontology};

fn taxonomy(depth: usize) -> Ontology {
    let mut axioms = Vec::new();
    for d in 0..depth {
        for w in 0..4 {
            axioms.push(Axiom::SubClassOf(
                Value::str(&format!("c{d}_{w}")),
                Value::str(&format!("c{}_{}", d + 1, w / 2)),
            ));
        }
    }
    Ontology::from_axioms(axioms)
}

fn base(products: usize) -> Vec<Triple> {
    (0..products)
        .map(|p| {
            Triple::new(
                EntityId(p as u64),
                "type",
                Value::str(&format!("c0_{}", p % 4)),
            )
        })
        .collect()
}

fn bench_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("reason/closure");
    g.sample_size(10);
    for depth in [4usize, 8] {
        let ont = taxonomy(depth);
        let facts = base(1_000);
        g.bench_with_input(BenchmarkId::new("naive", depth), &depth, |b, _| {
            b.iter(|| naive(&facts, &ont, &id_resolver).len())
        });
        g.bench_with_input(BenchmarkId::new("seminaive", depth), &depth, |b, _| {
            b.iter(|| seminaive(&facts, &ont, &id_resolver).len())
        });
    }
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("reason/incremental_update");
    g.sample_size(20);
    let ont = taxonomy(8);
    let facts = base(1_000);
    let mut inc = IncrementalMaterializer::new(ont.clone(), Box::new(id_resolver));
    for f in &facts {
        inc.insert(*f);
    }
    let victim = facts[0];
    let replacement = Triple::new(victim.s, "type", Value::str("c0_3"));
    g.bench_function("dred_reclassify_one", |b| {
        b.iter(|| {
            inc.remove(&victim);
            inc.insert(victim);
            inc.remove(&replacement); // no-op (absent)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_closure, bench_incremental);
criterion_main!(benches);
