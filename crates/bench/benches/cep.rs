//! Criterion benchmarks for the CEP matcher (experiment E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fenestra_base::expr::Expr;
use fenestra_base::record::Event;
use fenestra_base::time::Duration;
use fenestra_base::value::Value;
use fenestra_cep::{EventPattern, Matcher, Pattern, PatternSpec};

fn events(n: u64) -> Vec<Event> {
    (0..n)
        .map(|i| {
            let kind = ["a", "b", "c", "d", "e"][(i % 5) as usize];
            Event::from_pairs(
                "s",
                i + 1,
                [
                    ("kind", Value::str(kind)),
                    ("user", Value::str(&format!("u{}", (i / 5) % 50))),
                ],
            )
        })
        .collect()
}

fn seq_pattern(len: usize) -> PatternSpec {
    let kinds = ["a", "b", "c", "d", "e"];
    let atoms: Vec<Pattern> = (0..len)
        .map(|i| {
            let mut atom =
                EventPattern::on("s", kinds[i]).filter(Expr::name("kind").eq(Expr::lit(kinds[i])));
            if i > 0 {
                atom = atom.filter(
                    Expr::name("user").eq(Expr::name(format!("{}.user", kinds[0]).as_str())),
                );
            }
            Pattern::atom(atom)
        })
        .collect();
    PatternSpec::new(Pattern::seq(atoms), Duration::millis(50))
}

fn bench_matcher(c: &mut Criterion) {
    let evs = events(5_000);
    let mut g = c.benchmark_group("cep/sequence_matching");
    g.sample_size(10);
    for len in [2usize, 3, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| {
                let mut m = Matcher::new(seq_pattern(len)).unwrap();
                let mut n = 0usize;
                for e in &evs {
                    n += m.on_event(e).len();
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matcher);
criterion_main!(benches);
