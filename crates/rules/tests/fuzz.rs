//! Robustness: the rule parser is total (never panics) on arbitrary
//! and DSL-plausible inputs.

use fenestra_rules::dsl::parse_rules;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_total_on_arbitrary_strings(s in "\\PC*") {
        let _ = parse_rules(&s);
    }

    #[test]
    fn parser_total_on_token_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("rule"), Just("on"), Just("pattern"), Just("then"),
                Just("within"), Just("without"), Just("if"), Just("state"),
                Just("exists"), Just("absent"), Just("assert"), Just("replace"),
                Just("retract"), Just("clear"), Just("$"), Just("@"), Just("("),
                Just(")"), Just("."), Just("="), Just("=="), Just(":"),
                Just("x"), Just("s"), Just("5m"), Just("1"), Just("\"v\""),
                Just("where"),
            ],
            0..32,
        )
    ) {
        let s = parts.join(" ");
        let _ = parse_rules(&s);
    }
}
