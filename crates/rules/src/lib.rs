#![warn(missing_docs)]
//! # fenestra-rules
//!
//! **State management rules** — the core abstraction proposed by the
//! paper: declarative rules that "declare how the stream of input data
//! updates the state" (§1), evaluated by the state management
//! component against the temporal state repository.
//!
//! A [`rule::StateRule`] couples:
//!
//! * a **trigger** — a single-event selector (stream + predicate) or a
//!   multi-event CEP pattern (the paper's open question 1:
//!   "a state transition determined by multiple streaming elements");
//! * optional **guards** — conditions on the current state that must
//!   hold for the rule to fire ("activating some derivations only when
//!   specific conditions on the state are met", §1);
//! * **actions** — `assert` / `retract` / `replace` state transitions,
//!   with `replace` realizing the paper's motivating semantics: "the
//!   most recent position invalidates and updates any previous
//!   position of the same visitor".
//!
//! Rules are written either through the builder API or in the textual
//! DSL ([`dsl`]):
//!
//! ```text
//! rule visitor_moves:
//!   on sensors where kind == "enter"
//!   replace $(visitor).room = room
//!
//! rule user_leaves:
//!   on clicks where action == "leave"
//!   if state($(user)).status == "active"
//!   retract $(user).status = "active"
//! ```
//!
//! The [`engine::RuleEngine`] applies rules to events in timestamp
//! order, writing transitions into a
//! [`fenestra_temporal::TemporalStore`] with per-rule provenance.

pub mod dsl;
pub mod engine;
pub mod rule;

pub use engine::{FireReport, RuleEngine, Transition, TransitionKind};
pub use rule::{Action, EntityRef, Guard, StateRule, Trigger};
