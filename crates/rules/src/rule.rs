//! The state-management rule model.

use fenestra_base::expr::Expr;
use fenestra_base::record::StreamId;
use fenestra_base::symbol::Symbol;
use fenestra_cep::PatternSpec;
use fenestra_temporal::AttrId;

/// What causes a rule to fire.
#[derive(Debug, Clone)]
pub enum Trigger {
    /// One event on `stream` satisfying `filter`.
    Event {
        /// Source stream.
        stream: StreamId,
        /// Content predicate (`None` = every event).
        filter: Option<Expr>,
    },
    /// A completed CEP pattern match (multi-event transition).
    Pattern(Box<PatternSpec>),
}

impl Trigger {
    /// Every event on `stream`.
    pub fn on(stream: impl Into<Symbol>) -> Trigger {
        Trigger::Event {
            stream: stream.into(),
            filter: None,
        }
    }

    /// Events on `stream` passing `filter`.
    pub fn on_where(stream: impl Into<Symbol>, filter: Expr) -> Trigger {
        Trigger::Event {
            stream: stream.into(),
            filter: Some(filter),
        }
    }

    /// A pattern trigger.
    pub fn pattern(spec: PatternSpec) -> Trigger {
        Trigger::Pattern(Box::new(spec))
    }
}

/// How a rule names the entity an action applies to.
#[derive(Debug, Clone)]
pub enum EntityRef {
    /// Evaluate an expression in the firing scope; the result must be
    /// a string (named entity, created on demand) or an entity id.
    Expr(Expr),
    /// A fixed named entity (created on demand).
    Named(Symbol),
}

impl EntityRef {
    /// Entity named by an event field (shorthand for
    /// `EntityRef::Expr(Expr::name(field))`).
    pub fn field(field: impl Into<Symbol>) -> EntityRef {
        EntityRef::Expr(Expr::name(field.into().as_str()))
    }

    /// A fixed named entity.
    pub fn named(name: impl Into<Symbol>) -> EntityRef {
        EntityRef::Named(name.into())
    }
}

/// A condition on the current state, checked before actions run.
#[derive(Debug, Clone)]
pub enum Guard {
    /// `state(entity).attr == value` must hold.
    StateEquals {
        /// The entity.
        entity: EntityRef,
        /// The attribute.
        attr: AttrId,
        /// Expected value (an expression over the firing scope).
        value: Expr,
    },
    /// `(entity, attr, *)` must have at least one open fact.
    StateExists {
        /// The entity.
        entity: EntityRef,
        /// The attribute.
        attr: AttrId,
    },
    /// `(entity, attr, *)` must have no open fact.
    StateAbsent {
        /// The entity.
        entity: EntityRef,
        /// The attribute.
        attr: AttrId,
    },
    /// An arbitrary predicate over the firing scope (event fields /
    /// pattern bindings).
    Expr(Expr),
}

/// A state transition produced by a firing rule.
#[derive(Debug, Clone)]
pub enum Action {
    /// Assert `(entity, attr, value)` valid from the firing time.
    Assert {
        /// Target entity.
        entity: EntityRef,
        /// Attribute.
        attr: AttrId,
        /// Value expression.
        value: Expr,
    },
    /// Close the open fact `(entity, attr, value)`.
    Retract {
        /// Target entity.
        entity: EntityRef,
        /// Attribute.
        attr: AttrId,
        /// Value expression.
        value: Expr,
    },
    /// Close all open facts for `(entity, attr)` and assert the new
    /// value — the invalidate-and-update primitive.
    Replace {
        /// Target entity.
        entity: EntityRef,
        /// Attribute.
        attr: AttrId,
        /// New value expression.
        value: Expr,
    },
    /// Close every open fact about the entity.
    RetractEntity {
        /// Target entity.
        entity: EntityRef,
    },
}

/// A complete state-management rule.
#[derive(Debug, Clone)]
pub struct StateRule {
    /// Rule name (becomes fact provenance).
    pub name: Symbol,
    /// Firing trigger.
    pub trigger: Trigger,
    /// Conjunctive guards.
    pub guards: Vec<Guard>,
    /// Actions, executed in order.
    pub actions: Vec<Action>,
}

impl StateRule {
    /// Start building a rule.
    pub fn new(name: impl Into<Symbol>, trigger: Trigger) -> StateRule {
        StateRule {
            name: name.into(),
            trigger,
            guards: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// Add a guard (chainable).
    pub fn guard(mut self, g: Guard) -> StateRule {
        self.guards.push(g);
        self
    }

    /// Add an action (chainable).
    pub fn action(mut self, a: Action) -> StateRule {
        self.actions.push(a);
        self
    }

    /// Shorthand: `replace $(entity_field).attr = value_field`.
    pub fn replace_field(
        self,
        entity_field: impl Into<Symbol>,
        attr: impl Into<Symbol>,
        value_field: impl Into<Symbol>,
    ) -> StateRule {
        self.action(Action::Replace {
            entity: EntityRef::field(entity_field),
            attr: attr.into(),
            value: Expr::name(value_field.into().as_str()),
        })
    }

    /// Validate structural sanity: at least one action, and `All`/empty
    /// pattern problems surface at compile time in the engine.
    pub fn validate(&self) -> fenestra_base::error::Result<()> {
        if self.actions.is_empty() {
            return Err(fenestra_base::error::Error::Invalid(format!(
                "rule `{}` has no actions",
                self.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let r = StateRule::new("move", Trigger::on("sensors"))
            .guard(Guard::Expr(Expr::name("kind").eq(Expr::lit("enter"))))
            .replace_field("visitor", "room", "room");
        assert_eq!(r.name.as_str(), "move");
        assert_eq!(r.guards.len(), 1);
        assert_eq!(r.actions.len(), 1);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn empty_rule_invalid() {
        let r = StateRule::new("noop", Trigger::on("s"));
        assert!(r.validate().is_err());
    }
}
