//! Pretty-printer for rules: the inverse of the parser, used for
//! introspection tooling and round-trip testing.

use crate::rule::{Action, EntityRef, Guard, StateRule, Trigger};
use fenestra_base::expr::Expr;
use fenestra_base::time::Duration;
use fenestra_cep::{EventPattern, Pattern};
use std::fmt::Write;

/// Render a rule in the DSL syntax. `parse_rule_text(print_rule(r))`
/// accepts the output for every rule the parser can produce (sequence
/// patterns; nested `Any`/`All`/`Repeat` are a builder-API-only
/// extension and render as a comment).
pub fn print_rule(rule: &StateRule) -> String {
    let mut out = String::new();
    writeln!(out, "rule {}:", rule.name).expect("write to string");
    print_trigger(&mut out, &rule.trigger);
    for g in &rule.guards {
        print_guard(&mut out, g);
    }
    for a in &rule.actions {
        print_action(&mut out, a);
    }
    out
}

/// Render a whole rule program.
pub fn print_rules(rules: &[StateRule]) -> String {
    rules.iter().map(print_rule).collect::<Vec<_>>().join("\n")
}

fn print_trigger(out: &mut String, t: &Trigger) {
    match t {
        Trigger::Event { stream, filter } => {
            match filter {
                Some(f) => writeln!(out, "  on {stream} where {f}"),
                None => writeln!(out, "  on {stream}"),
            }
            .expect("write to string");
        }
        Trigger::Pattern(spec) => {
            write!(out, "  on pattern ").expect("write to string");
            match &spec.pattern {
                Pattern::Atom(a) => print_atom(out, a),
                Pattern::Seq(ps) => {
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(out, " then ").expect("write to string");
                        }
                        match p {
                            Pattern::Atom(a) => print_atom(out, a),
                            other => write!(out, "# unsupported sub-pattern {other:?}")
                                .expect("write to string"),
                        }
                    }
                }
                other => write!(out, "# unsupported pattern {other:?}").expect("write to string"),
            }
            writeln!(out, " within {}", print_duration(spec.within)).expect("write to string");
            for n in &spec.negated {
                write!(out, "     without ").expect("write to string");
                print_atom(out, n);
                writeln!(out).expect("write to string");
            }
        }
    }
}

fn print_atom(out: &mut String, a: &EventPattern) {
    let stream = a
        .stream
        .map(|s| s.as_str().to_owned())
        .unwrap_or_else(|| "_".into());
    match &a.pred {
        Expr::Lit(v) if v.is_truthy() => {
            write!(out, "({}: {stream})", a.alias).expect("write to string")
        }
        pred => write!(out, "({}: {stream} where {pred})", a.alias).expect("write to string"),
    }
}

fn print_duration(d: Duration) -> String {
    let ms = d.as_millis();
    if ms.is_multiple_of(3_600_000) && ms > 0 {
        format!("{}h", ms / 3_600_000)
    } else if ms.is_multiple_of(60_000) && ms > 0 {
        format!("{}m", ms / 60_000)
    } else if ms.is_multiple_of(1_000) && ms > 0 {
        format!("{}s", ms / 1_000)
    } else {
        format!("{ms}ms")
    }
}

fn print_entityref(e: &EntityRef) -> String {
    match e {
        EntityRef::Expr(expr) => format!("$({expr})"),
        EntityRef::Named(n) => format!("@{n}"),
    }
}

fn print_guard(out: &mut String, g: &Guard) {
    match g {
        Guard::Expr(e) => writeln!(out, "  if {e}"),
        Guard::StateEquals {
            entity,
            attr,
            value,
        } => writeln!(
            out,
            "  if state({}).{attr} == {value}",
            print_entityref(entity)
        ),
        Guard::StateExists { entity, attr } => {
            writeln!(out, "  if exists state({}).{attr}", print_entityref(entity))
        }
        Guard::StateAbsent { entity, attr } => {
            writeln!(out, "  if absent state({}).{attr}", print_entityref(entity))
        }
    }
    .expect("write to string");
}

fn print_action(out: &mut String, a: &Action) {
    match a {
        Action::Assert {
            entity,
            attr,
            value,
        } => writeln!(out, "  assert {}.{attr} = {value}", print_entityref(entity)),
        Action::Replace {
            entity,
            attr,
            value,
        } => writeln!(
            out,
            "  replace {}.{attr} = {value}",
            print_entityref(entity)
        ),
        Action::Retract {
            entity,
            attr,
            value,
        } => writeln!(
            out,
            "  retract {}.{attr} = {value}",
            print_entityref(entity)
        ),
        Action::RetractEntity { entity } => {
            writeln!(out, "  clear {}", print_entityref(entity))
        }
    }
    .expect("write to string");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_rule_text, parse_rules};

    const PROGRAMS: &[&str] = &[
        r#"
        rule visitor_moves:
          on sensors where kind == "enter"
          replace $(visitor).room = room
        "#,
        r#"
        rule leave:
          on clicks where action == "leave"
          if state($(user)).status == "active"
          if amount > 0 and not (flag)
          retract $(user).status = "active"
        "#,
        r#"
        rule first_seen:
          on clicks
          if absent state($(user)).first_ts
          assert $(user).first_ts = ts
        "#,
        r#"
        rule funnel:
          on pattern (o: orders where kind == "placed")
             then (p: payments where order == o.order)
             within 1h
             without (c: cancels where order == o.order)
          replace $(o.user).last_paid = p.order
          clear @scratch
        "#,
        r#"
        rule exists_guard:
          on s
          if exists state(@global).flag
          replace @global.counter = counter + 1
        "#,
    ];

    #[test]
    fn print_parse_round_trip_preserves_behaviour() {
        for src in PROGRAMS {
            let rule = parse_rule_text(src).unwrap();
            let printed = print_rule(&rule);
            let reparsed = parse_rule_text(&printed)
                .unwrap_or_else(|e| panic!("failed to reparse:\n{printed}\nerror: {e}"));
            // Compare by printing again: fixpoint after one round.
            let printed2 = print_rule(&reparsed);
            assert_eq!(printed, printed2, "print→parse→print not stable");
        }
    }

    #[test]
    fn program_printer_joins_rules() {
        let rules =
            parse_rules("rule a:\n on s\n assert $(u).x = 1\nrule b:\n on s\n assert $(u).y = 2")
                .unwrap();
        let text = print_rules(&rules);
        assert!(text.contains("rule a:"));
        assert!(text.contains("rule b:"));
        let back = parse_rules(&text).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn duration_rendering() {
        assert_eq!(print_duration(Duration::hours(2)), "2h");
        assert_eq!(print_duration(Duration::minutes(5)), "5m");
        assert_eq!(print_duration(Duration::secs(30)), "30s");
        assert_eq!(print_duration(Duration::millis(250)), "250ms");
    }
}
