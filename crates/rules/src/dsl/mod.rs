//! The textual rule language.
//!
//! ```text
//! # Comments run to end of line.
//! rule visitor_moves:
//!   on sensors where kind == "enter"
//!   replace $(visitor).room = room
//!
//! rule session_opens:
//!   on clicks where action == "enter"
//!   if absent state($(user)).status
//!   assert $(user).status = "active"
//!
//! rule order_flow:
//!   on pattern (o: orders where kind == "placed")
//!      then (p: payments where order == o.order)
//!      within 1h
//!      without (c: cancels where order == o.order)
//!   replace $(o.user).last_paid = p.order
//!
//! rule cleanup:
//!   on exits
//!   clear $(visitor)
//! ```
//!
//! Grammar:
//!
//! ```text
//! program   := rule*
//! rule      := "rule" IDENT ":" trigger guard* action+
//! trigger   := "on" IDENT ["where" expr]
//!            | "on" "pattern" atom ("then" atom)* "within" DURATION
//!              ("without" atom)*
//! atom      := "(" IDENT ":" IDENT ["where" expr] ")"
//! guard     := "if" ("exists"|"absent") stateref
//!            | "if" stateref "==" expr
//!            | "if" expr
//! stateref  := "state" "(" entityref ")" "." IDENT
//! action    := ("assert"|"replace"|"retract") entityref "." IDENT "=" expr
//!            | "clear" entityref
//! entityref := "$" "(" expr ")" | "@" IDENT
//! ```

pub mod print;

pub use print::{print_rule, print_rules};

use crate::rule::{Action, EntityRef, Guard, StateRule, Trigger};
use fenestra_base::error::Result;
use fenestra_base::parse::{lex, Cursor, Tok};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Duration;
use fenestra_cep::{EventPattern, Pattern, PatternSpec};

/// Parse a rule program: zero or more `rule` definitions.
pub fn parse_rules(src: &str) -> Result<Vec<StateRule>> {
    let toks = lex(src)?;
    let mut c = Cursor::new(&toks);
    let mut out = Vec::new();
    while !c.at_end() {
        out.push(parse_rule(&mut c)?);
    }
    Ok(out)
}

/// Parse exactly one rule.
pub fn parse_rule_text(src: &str) -> Result<StateRule> {
    let rules = parse_rules(src)?;
    match rules.len() {
        1 => Ok(rules.into_iter().next().expect("len checked")),
        n => Err(fenestra_base::error::Error::Invalid(format!(
            "expected exactly one rule, found {n}"
        ))),
    }
}

fn parse_rule(c: &mut Cursor<'_>) -> Result<StateRule> {
    c.expect_kw("rule")?;
    let name = c.expect_ident()?;
    c.expect_punct(":")?;
    let trigger = parse_trigger(c)?;
    let mut rule = StateRule::new(name.as_str(), trigger);
    while c.eat_kw("if") {
        rule.guards.push(parse_guard(c)?);
    }
    loop {
        match c.peek() {
            Some(Tok::Ident(kw))
                if matches!(kw.as_str(), "assert" | "replace" | "retract" | "clear") =>
            {
                rule.actions.push(parse_action(c)?);
            }
            _ => break,
        }
    }
    rule.validate()?;
    Ok(rule)
}

fn parse_trigger(c: &mut Cursor<'_>) -> Result<Trigger> {
    c.expect_kw("on")?;
    if c.eat_kw("pattern") {
        let mut atoms = vec![parse_atom(c)?];
        while c.eat_kw("then") {
            atoms.push(parse_atom(c)?);
        }
        c.expect_kw("within")?;
        let within = match c.next() {
            Some(Tok::Duration(ms)) => Duration::millis(*ms),
            other => return Err(c.error(format!("expected duration, found {other:?}"))),
        };
        let pattern = if atoms.len() == 1 {
            Pattern::Atom(atoms.into_iter().next().expect("len checked"))
        } else {
            Pattern::Seq(atoms.into_iter().map(Pattern::Atom).collect())
        };
        let mut spec = PatternSpec::new(pattern, within);
        while c.eat_kw("without") {
            spec = spec.without(parse_atom(c)?);
        }
        Ok(Trigger::pattern(spec))
    } else {
        let stream = c.expect_ident()?;
        let filter = if c.eat_kw("where") {
            Some(c.expression()?)
        } else {
            None
        };
        Ok(Trigger::Event {
            stream: Symbol::intern(&stream),
            filter,
        })
    }
}

fn parse_atom(c: &mut Cursor<'_>) -> Result<EventPattern> {
    c.expect_punct("(")?;
    let alias = c.expect_ident()?;
    c.expect_punct(":")?;
    let stream = c.expect_ident()?;
    let mut atom = EventPattern::on(stream.as_str(), alias.as_str());
    if c.eat_kw("where") {
        atom = atom.filter(c.expression()?);
    }
    c.expect_punct(")")?;
    Ok(atom)
}

fn parse_guard(c: &mut Cursor<'_>) -> Result<Guard> {
    if c.eat_kw("exists") {
        let (entity, attr) = parse_stateref(c)?;
        return Ok(Guard::StateExists { entity, attr });
    }
    if c.eat_kw("absent") {
        let (entity, attr) = parse_stateref(c)?;
        return Ok(Guard::StateAbsent { entity, attr });
    }
    if matches!(c.peek(), Some(Tok::Ident(s)) if s == "state") {
        let (entity, attr) = parse_stateref(c)?;
        c.expect_punct("==").or_else(|_| c.expect_punct("="))?;
        let value = c.expression()?;
        return Ok(Guard::StateEquals {
            entity,
            attr,
            value,
        });
    }
    Ok(Guard::Expr(c.expression()?))
}

fn parse_stateref(c: &mut Cursor<'_>) -> Result<(EntityRef, Symbol)> {
    c.expect_kw("state")?;
    c.expect_punct("(")?;
    let entity = parse_entityref(c)?;
    c.expect_punct(")")?;
    c.expect_punct(".")?;
    let attr = c.expect_ident()?;
    Ok((entity, Symbol::intern(&attr)))
}

fn parse_action(c: &mut Cursor<'_>) -> Result<Action> {
    let kw = c.expect_ident()?;
    if kw == "clear" {
        let entity = parse_entityref(c)?;
        return Ok(Action::RetractEntity { entity });
    }
    let entity = parse_entityref(c)?;
    c.expect_punct(".")?;
    let attr = Symbol::intern(&c.expect_ident()?);
    c.expect_punct("=")?;
    let value = c.expression()?;
    Ok(match kw.as_str() {
        "assert" => Action::Assert {
            entity,
            attr,
            value,
        },
        "replace" => Action::Replace {
            entity,
            attr,
            value,
        },
        "retract" => Action::Retract {
            entity,
            attr,
            value,
        },
        other => return Err(c.error(format!("unknown action `{other}`"))),
    })
}

fn parse_entityref(c: &mut Cursor<'_>) -> Result<EntityRef> {
    if c.eat_punct("$") {
        c.expect_punct("(")?;
        let e = c.expression()?;
        c.expect_punct(")")?;
        Ok(EntityRef::Expr(e))
    } else if c.eat_punct("@") {
        let name = c.expect_ident()?;
        Ok(EntityRef::named(name.as_str()))
    } else {
        Err(c.error("expected entity reference `$(expr)` or `@name`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::expr::Expr;
    use fenestra_base::record::Event;
    use fenestra_base::value::Value;
    use fenestra_temporal::{AttrSchema, TemporalStore};

    #[test]
    fn parse_simple_replace_rule() {
        let r = parse_rule_text(
            r#"
            rule visitor_moves:
              on sensors where kind == "enter"
              replace $(visitor).room = room
            "#,
        )
        .unwrap();
        assert_eq!(r.name.as_str(), "visitor_moves");
        match &r.trigger {
            Trigger::Event { stream, filter } => {
                assert_eq!(stream.as_str(), "sensors");
                assert!(filter.is_some());
            }
            other => panic!("wrong trigger {other:?}"),
        }
        assert_eq!(r.actions.len(), 1);
        assert!(matches!(r.actions[0], Action::Replace { .. }));
    }

    #[test]
    fn parse_guards() {
        let r = parse_rule_text(
            r#"
            rule leave:
              on clicks where action == "leave"
              if state($(user)).status == "active"
              if amount > 0
              retract $(user).status = "active"
            "#,
        )
        .unwrap();
        assert_eq!(r.guards.len(), 2);
        assert!(matches!(r.guards[0], Guard::StateEquals { .. }));
        assert!(matches!(r.guards[1], Guard::Expr(_)));
    }

    #[test]
    fn parse_exists_absent_guards() {
        let r = parse_rule_text(
            r#"
            rule first:
              on clicks
              if absent state($(user)).first_ts
              assert $(user).first_ts = ts
            "#,
        )
        .unwrap();
        assert!(matches!(r.guards[0], Guard::StateAbsent { .. }));
        let r = parse_rule_text(
            r#"
            rule seen:
              on clicks
              if exists state($(user)).first_ts
              replace $(user).returning = true
            "#,
        )
        .unwrap();
        assert!(matches!(r.guards[0], Guard::StateExists { .. }));
    }

    #[test]
    fn parse_pattern_trigger_with_negation() {
        let r = parse_rule_text(
            r#"
            rule order_flow:
              on pattern (o: orders where kind == "placed")
                 then (p: payments where order == o.order)
                 within 1h
                 without (c: cancels where order == o.order)
              replace $(o.user).last_paid = p.order
            "#,
        )
        .unwrap();
        match &r.trigger {
            Trigger::Pattern(spec) => {
                assert_eq!(spec.within, Duration::hours(1));
                assert_eq!(spec.negated.len(), 1);
                assert_eq!(spec.pattern.aliases().len(), 2);
            }
            other => panic!("wrong trigger {other:?}"),
        }
    }

    #[test]
    fn parse_clear_and_fixed_entity() {
        let rules = parse_rules(
            r#"
            rule cleanup:
              on exits
              clear $(visitor)

            rule heartbeat:
              on ticks
              replace @system.last_tick = ts
            "#,
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert!(matches!(rules[0].actions[0], Action::RetractEntity { .. }));
        match &rules[1].actions[0] {
            Action::Replace {
                entity: EntityRef::Named(n),
                ..
            } => {
                assert_eq!(n.as_str(), "system");
            }
            other => panic!("wrong action {other:?}"),
        }
    }

    #[test]
    fn computed_entity_reference() {
        let r = parse_rule_text(
            r#"
            rule composite:
              on s
              replace $("user:" + user).seen = true
            "#,
        )
        .unwrap();
        match &r.actions[0] {
            Action::Replace {
                entity: EntityRef::Expr(e),
                ..
            } => {
                assert!(matches!(e, Expr::Binary(..)));
            }
            other => panic!("wrong action {other:?}"),
        }
    }

    #[test]
    fn parse_errors_have_positions() {
        for bad in [
            "rule x\n on s\n assert $(u).a = 1", // missing colon
            "rule x: on s",                      // no actions
            "rule x: on s assert u.a = 1",       // bad entityref
            "rule x: on pattern (a: s) within 5q assert $(u).a = 1", // bad duration
            "rule x: on s frobnicate $(u).a = 1", // unknown action
        ] {
            assert!(parse_rules(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn parsed_rules_execute_end_to_end() {
        let rules = parse_rules(
            r#"
            rule enter:
              on clicks where action == "enter"
              replace $(user).status = "active"

            rule leave:
              on clicks where action == "leave"
              if state($(user)).status == "active"
              retract $(user).status = "active"
            "#,
        )
        .unwrap();
        let mut store = TemporalStore::new();
        store.declare_attr("status", AttrSchema::one());
        let mut eng = crate::engine::RuleEngine::new();
        for r in rules {
            eng.add_rule(r).unwrap();
        }
        let ev = |ts: u64, user: &str, action: &str| {
            Event::from_pairs(
                "clicks",
                ts,
                [("user", Value::str(user)), ("action", Value::str(action))],
            )
        };
        eng.on_event(&ev(1, "u1", "enter"), &mut store);
        let u1 = store.lookup_entity("u1").unwrap();
        assert_eq!(
            store.current().value(u1, "status"),
            Some(Value::str("active"))
        );
        eng.on_event(&ev(5, "u1", "leave"), &mut store);
        assert_eq!(store.current().value(u1, "status"), None);
        // Session validity recorded as [1, 5).
        let h = store.history(u1, "status");
        assert_eq!(h.len(), 1);
        assert_eq!(
            h[0].0,
            fenestra_base::time::Interval::closed(
                fenestra_base::time::Timestamp::new(1),
                fenestra_base::time::Timestamp::new(5)
            )
        );
    }
}
