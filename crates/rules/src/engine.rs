//! The state management component: applies rules to events, writing
//! transitions into the temporal store.

use crate::rule::{Action, EntityRef, Guard, StateRule, Trigger};
use fenestra_base::error::{Error, Result};
use fenestra_base::expr::Scope;
use fenestra_base::record::Event;
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::{EntityId, Value};
use fenestra_cep::{Match, Matcher};
use fenestra_temporal::{AttrId, Provenance, TemporalStore};

/// The kind of state change a transition applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// A fact became valid.
    Assert,
    /// A fact stopped being valid.
    Retract,
    /// Invalidate-and-update (old value closed, new value opened).
    Replace,
    /// All of an entity's facts were closed.
    Clear,
}

impl TransitionKind {
    /// Lower-case name, used as the `op` field of published
    /// state-change events.
    pub fn name(self) -> &'static str {
        match self {
            TransitionKind::Assert => "assert",
            TransitionKind::Retract => "retract",
            TransitionKind::Replace => "replace",
            TransitionKind::Clear => "clear",
        }
    }
}

/// One applied state transition, with enough detail to republish the
/// change as a stream element.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// The rule that fired.
    pub rule: Symbol,
    /// What happened.
    pub kind: TransitionKind,
    /// The entity.
    pub entity: EntityId,
    /// The attribute (for `Clear`, the reserved name `*`).
    pub attr: AttrId,
    /// The new value (`Assert`/`Replace`) or retracted value
    /// (`Retract`); `Null` for `Clear`.
    pub value: Value,
    /// The transition time.
    pub t: Timestamp,
}

/// Outcome of delivering one event to the engine.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct FireReport {
    /// Rule firings whose actions ran.
    pub fired: u64,
    /// State transitions actually applied (changed the store).
    pub transitions: u64,
    /// Firings suppressed by a failing guard.
    pub guard_blocked: u64,
    /// Action/guard evaluation or store errors: `(rule, message)`.
    pub errors: Vec<(Symbol, String)>,
    /// The applied transitions, in application order.
    pub applied: Vec<Transition>,
}

impl FireReport {
    fn absorb(&mut self, other: FireReport) {
        self.fired += other.fired;
        self.transitions += other.transitions;
        self.guard_blocked += other.guard_blocked;
        self.errors.extend(other.errors);
        self.applied.extend(other.applied);
    }
}

enum CompiledTrigger {
    Event,
    Pattern(Matcher),
}

struct CompiledRule {
    rule: StateRule,
    trigger: CompiledTrigger,
}

/// The firing scope: either a single event or a pattern match.
enum FiringScope<'a> {
    Event(&'a Event),
    Match(&'a Match),
}

impl Scope for FiringScope<'_> {
    fn lookup(&self, name: Symbol) -> Option<Value> {
        match self {
            FiringScope::Event(ev) => {
                if let Some(v) = ev.record.get(name) {
                    return Some(*v);
                }
                match name.as_str() {
                    "ts" => Some(Value::Time(ev.ts)),
                    "stream" => Some(Value::Str(ev.stream)),
                    _ => None,
                }
            }
            FiringScope::Match(m) => {
                let s = name.as_str();
                if let Some((alias, field)) = s.split_once('.') {
                    let ev = m
                        .bindings
                        .iter()
                        .rev()
                        .find(|(a, _)| a.as_str() == alias)
                        .map(|(_, e)| e)?;
                    return match field {
                        "ts" => Some(Value::Time(ev.ts)),
                        "stream" => Some(Value::Str(ev.stream)),
                        _ => ev.record.get(Symbol::intern(field)).copied(),
                    };
                }
                // Unprefixed names resolve against the *last* bound
                // event, which is usually the triggering one.
                let last = m.bindings.last().map(|(_, e)| e)?;
                if let Some(v) = last.record.get(name) {
                    return Some(*v);
                }
                match s {
                    "ts" => Some(Value::Time(last.ts)),
                    _ => None,
                }
            }
        }
    }
}

/// Evaluates state-management rules against an event stream.
#[derive(Default)]
pub struct RuleEngine {
    rules: Vec<CompiledRule>,
}

impl RuleEngine {
    /// An engine with no rules.
    pub fn new() -> RuleEngine {
        RuleEngine::default()
    }

    /// Register a rule (validates it and compiles its pattern, if any).
    pub fn add_rule(&mut self, rule: StateRule) -> Result<()> {
        rule.validate()?;
        let trigger = match &rule.trigger {
            Trigger::Event { .. } => CompiledTrigger::Event,
            Trigger::Pattern(spec) => CompiledTrigger::Pattern(Matcher::new((**spec).clone())?),
        };
        self.rules.push(CompiledRule { rule, trigger });
        Ok(())
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rule is registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The registered rule names, in registration order.
    pub fn rule_names(&self) -> Vec<Symbol> {
        self.rules.iter().map(|c| c.rule.name).collect()
    }

    /// The registered rules, in registration order.
    pub fn rules(&self) -> impl Iterator<Item = &StateRule> {
        self.rules.iter().map(|c| &c.rule)
    }

    /// Deliver one event: evaluate every rule's trigger, guards, and
    /// actions. Transitions are applied at the event's timestamp (for
    /// pattern triggers, the completing event's timestamp).
    pub fn on_event(&mut self, ev: &Event, store: &mut TemporalStore) -> FireReport {
        let mut report = FireReport::default();
        for cr in &mut self.rules {
            match &mut cr.trigger {
                CompiledTrigger::Event => {
                    let Trigger::Event { stream, filter } = &cr.rule.trigger else {
                        unreachable!("compiled trigger matches rule trigger");
                    };
                    if ev.stream != *stream {
                        continue;
                    }
                    let scope = FiringScope::Event(ev);
                    if let Some(f) = filter {
                        match f.eval_bool(&scope) {
                            Ok(true) => {}
                            Ok(false) => continue,
                            Err(e) => {
                                report.errors.push((cr.rule.name, e.to_string()));
                                continue;
                            }
                        }
                    }
                    report.absorb(fire(&cr.rule, &scope, ev.ts, store));
                }
                CompiledTrigger::Pattern(matcher) => {
                    for m in matcher.on_event(ev) {
                        let scope = FiringScope::Match(&m);
                        report.absorb(fire(&cr.rule, &scope, ev.ts, store));
                    }
                }
            }
        }
        report
    }
}

fn fire(
    rule: &StateRule,
    scope: &FiringScope<'_>,
    t: Timestamp,
    store: &mut TemporalStore,
) -> FireReport {
    let mut report = FireReport::default();
    // Guards.
    for g in &rule.guards {
        match eval_guard(g, scope, store) {
            Ok(true) => {}
            Ok(false) => {
                report.guard_blocked += 1;
                return report;
            }
            Err(e) => {
                report.errors.push((rule.name, e.to_string()));
                return report;
            }
        }
    }
    report.fired += 1;
    let prov = Provenance::Rule(rule.name);
    for action in &rule.actions {
        if let Err(e) = run_action(action, rule.name, scope, t, prov, store, &mut report) {
            report.errors.push((rule.name, e.to_string()));
        }
    }
    report
}

fn eval_guard(g: &Guard, scope: &FiringScope<'_>, store: &TemporalStore) -> Result<bool> {
    match g {
        Guard::Expr(e) => e.eval_bool(scope),
        Guard::StateEquals {
            entity,
            attr,
            value,
        } => {
            let Some(e) = lookup_entity(entity, scope, store)? else {
                return Ok(false);
            };
            let v = value.eval(scope)?;
            Ok(store.current().holds(e, *attr, v))
        }
        Guard::StateExists { entity, attr } => {
            let Some(e) = lookup_entity(entity, scope, store)? else {
                return Ok(false);
            };
            Ok(!store.current().values(e, *attr).is_empty())
        }
        Guard::StateAbsent { entity, attr } => {
            let Some(e) = lookup_entity(entity, scope, store)? else {
                return Ok(true);
            };
            Ok(store.current().values(e, *attr).is_empty())
        }
    }
}

/// Resolve an entity reference without creating it (guards).
fn lookup_entity(
    er: &EntityRef,
    scope: &FiringScope<'_>,
    store: &TemporalStore,
) -> Result<Option<EntityId>> {
    match entity_value(er, scope)? {
        Value::Str(name) => Ok(store.lookup_entity(name)),
        Value::Id(e) => Ok(Some(e)),
        other => Err(Error::Invalid(format!(
            "entity reference must be a name or id, got {}",
            other.type_name()
        ))),
    }
}

/// Resolve an entity reference, creating named entities on demand
/// (actions).
fn resolve_entity(
    er: &EntityRef,
    scope: &FiringScope<'_>,
    store: &mut TemporalStore,
) -> Result<EntityId> {
    match entity_value(er, scope)? {
        Value::Str(name) => Ok(store.named_entity(name)),
        Value::Id(e) => Ok(e),
        other => Err(Error::Invalid(format!(
            "entity reference must be a name or id, got {}",
            other.type_name()
        ))),
    }
}

fn entity_value(er: &EntityRef, scope: &FiringScope<'_>) -> Result<Value> {
    match er {
        EntityRef::Expr(e) => e.eval(scope),
        EntityRef::Named(n) => Ok(Value::Str(*n)),
    }
}

fn run_action(
    action: &Action,
    _rule: Symbol,
    scope: &FiringScope<'_>,
    t: Timestamp,
    prov: Provenance,
    store: &mut TemporalStore,
    report: &mut FireReport,
) -> Result<()> {
    match action {
        Action::Assert {
            entity,
            attr,
            value,
        } => {
            let e = resolve_entity(entity, scope, store)?;
            let v = value.eval(scope)?;
            let before = store.revision();
            store.assert_with(e, *attr, v, t, prov)?;
            if store.revision() > before {
                report.transitions += 1;
                report.applied.push(Transition {
                    rule: _rule,
                    kind: TransitionKind::Assert,
                    entity: e,
                    attr: *attr,
                    value: v,
                    t,
                });
            }
        }
        Action::Retract {
            entity,
            attr,
            value,
        } => {
            let e = resolve_entity(entity, scope, store)?;
            let v = value.eval(scope)?;
            store.retract_at(e, *attr, v, t)?;
            report.transitions += 1;
            report.applied.push(Transition {
                rule: _rule,
                kind: TransitionKind::Retract,
                entity: e,
                attr: *attr,
                value: v,
                t,
            });
        }
        Action::Replace {
            entity,
            attr,
            value,
        } => {
            let e = resolve_entity(entity, scope, store)?;
            let v = value.eval(scope)?;
            let out = store.replace_with(e, *attr, v, t, prov)?;
            if out.changed {
                report.transitions += 1;
                report.applied.push(Transition {
                    rule: _rule,
                    kind: TransitionKind::Replace,
                    entity: e,
                    attr: *attr,
                    value: v,
                    t,
                });
            }
        }
        Action::RetractEntity { entity } => {
            let e = resolve_entity(entity, scope, store)?;
            let closed = store.retract_entity_at(e, t)?;
            report.transitions += closed.len() as u64;
            if !closed.is_empty() {
                report.applied.push(Transition {
                    rule: _rule,
                    kind: TransitionKind::Clear,
                    entity: e,
                    attr: Symbol::intern("*"),
                    value: Value::Null,
                    t,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::expr::Expr;
    use fenestra_base::time::Duration;
    use fenestra_cep::{EventPattern, Pattern, PatternSpec};
    use fenestra_temporal::AttrSchema;

    fn sensor(ts: u64, visitor: &str, room: &str) -> Event {
        Event::from_pairs(
            "sensors",
            ts,
            [("visitor", Value::str(visitor)), ("room", Value::str(room))],
        )
    }

    fn engine_with_move_rule() -> (RuleEngine, TemporalStore) {
        let mut store = TemporalStore::new();
        store.declare_attr("room", AttrSchema::one());
        let mut eng = RuleEngine::new();
        eng.add_rule(
            StateRule::new("visitor_moves", Trigger::on("sensors"))
                .replace_field("visitor", "room", "room"),
        )
        .unwrap();
        (eng, store)
    }

    #[test]
    fn replace_rule_tracks_position() {
        let (mut eng, mut store) = engine_with_move_rule();
        let r1 = eng.on_event(&sensor(10, "v1", "lobby"), &mut store);
        assert_eq!(r1.fired, 1);
        assert_eq!(r1.transitions, 1);
        eng.on_event(&sensor(20, "v1", "lab"), &mut store);
        eng.on_event(&sensor(30, "v2", "lobby"), &mut store);
        let v1 = store.lookup_entity("v1").unwrap();
        let v2 = store.lookup_entity("v2").unwrap();
        assert_eq!(store.current().value(v1, "room"), Some(Value::str("lab")));
        assert_eq!(store.current().value(v2, "room"), Some(Value::str("lobby")));
        // History: the paper's "invalidates any previous position".
        assert_eq!(store.history(v1, "room").len(), 2);
        // Never simultaneously in two rooms.
        assert_eq!(store.current().values(v1, "room").len(), 1);
        // Provenance recorded.
        let f = store.current().entity_facts(v1).next().unwrap();
        assert_eq!(
            f.provenance,
            Provenance::Rule(Symbol::intern("visitor_moves"))
        );
    }

    #[test]
    fn idempotent_replace_counts_no_transition() {
        let (mut eng, mut store) = engine_with_move_rule();
        eng.on_event(&sensor(10, "v1", "lobby"), &mut store);
        let r = eng.on_event(&sensor(20, "v1", "lobby"), &mut store);
        assert_eq!(r.fired, 1);
        assert_eq!(r.transitions, 0, "same room, no state change");
    }

    #[test]
    fn filtered_trigger() {
        let mut store = TemporalStore::new();
        let mut eng = RuleEngine::new();
        eng.add_rule(
            StateRule::new(
                "active_users",
                Trigger::on_where("clicks", Expr::name("action").eq(Expr::lit("enter"))),
            )
            .action(Action::Assert {
                entity: EntityRef::field("user"),
                attr: Symbol::intern("status"),
                value: Expr::lit("active"),
            }),
        )
        .unwrap();
        let enter = Event::from_pairs(
            "clicks",
            1u64,
            [("user", Value::str("u1")), ("action", Value::str("enter"))],
        );
        let browse = Event::from_pairs(
            "clicks",
            2u64,
            [("user", Value::str("u2")), ("action", Value::str("browse"))],
        );
        eng.on_event(&enter, &mut store);
        eng.on_event(&browse, &mut store);
        assert!(store.lookup_entity("u1").is_some());
        assert!(store.lookup_entity("u2").is_none(), "filter blocked u2");
    }

    #[test]
    fn guards_gate_actions() {
        let mut store = TemporalStore::new();
        let mut eng = RuleEngine::new();
        // Retract "active" only if it is currently set.
        eng.add_rule(
            StateRule::new("leave", Trigger::on("leaves"))
                .guard(Guard::StateEquals {
                    entity: EntityRef::field("user"),
                    attr: Symbol::intern("status"),
                    value: Expr::lit("active"),
                })
                .action(Action::Retract {
                    entity: EntityRef::field("user"),
                    attr: Symbol::intern("status"),
                    value: Expr::lit("active"),
                }),
        )
        .unwrap();
        let leave = Event::from_pairs("leaves", 5u64, [("user", "u1")]);
        let r = eng.on_event(&leave, &mut store);
        assert_eq!(r.guard_blocked, 1, "u1 not active: guard blocks");
        assert_eq!(r.fired, 0);
        // Now set the state and retry.
        let u1 = store.named_entity("u1");
        store
            .assert_at(u1, "status", "active", Timestamp::new(6))
            .unwrap();
        let leave2 = Event::from_pairs("leaves", 7u64, [("user", "u1")]);
        let r = eng.on_event(&leave2, &mut store);
        assert_eq!(r.fired, 1);
        assert_eq!(store.current().value(u1, "status"), None);
    }

    #[test]
    fn state_exists_and_absent_guards() {
        let mut store = TemporalStore::new();
        let mut eng = RuleEngine::new();
        eng.add_rule(
            StateRule::new("first_seen", Trigger::on("clicks"))
                .guard(Guard::StateAbsent {
                    entity: EntityRef::field("user"),
                    attr: Symbol::intern("first_ts"),
                })
                .action(Action::Assert {
                    entity: EntityRef::field("user"),
                    attr: Symbol::intern("first_ts"),
                    value: Expr::name("ts"),
                }),
        )
        .unwrap();
        eng.on_event(
            &Event::from_pairs("clicks", 10u64, [("user", "u1")]),
            &mut store,
        );
        eng.on_event(
            &Event::from_pairs("clicks", 20u64, [("user", "u1")]),
            &mut store,
        );
        let u1 = store.lookup_entity("u1").unwrap();
        assert_eq!(
            store.current().value(u1, "first_ts"),
            Some(Value::Time(Timestamp::new(10))),
            "second event must not overwrite first_ts"
        );
    }

    #[test]
    fn pattern_trigger_multi_event_transition() {
        // Two sensor events for the same visitor within 100ms mark the
        // visitor as "moving fast" — a transition no single event
        // determines (paper §3.3 Q1).
        let spec = PatternSpec::new(
            Pattern::seq([
                Pattern::atom(EventPattern::on("sensors", "a")),
                Pattern::atom(
                    EventPattern::on("sensors", "b")
                        .filter(fenestra_base::parse::parse_expr("visitor == a.visitor").unwrap()),
                ),
            ]),
            Duration::millis(100),
        );
        let mut store = TemporalStore::new();
        let mut eng = RuleEngine::new();
        eng.add_rule(StateRule::new("fast_mover", Trigger::pattern(spec)).action(
            Action::Replace {
                entity: EntityRef::Expr(Expr::name("b.visitor")),
                attr: Symbol::intern("pace"),
                value: Expr::lit("fast"),
            },
        ))
        .unwrap();
        eng.on_event(&sensor(10, "v1", "lobby"), &mut store);
        let r = eng.on_event(&sensor(50, "v1", "lab"), &mut store);
        assert_eq!(r.fired, 1);
        let v1 = store.lookup_entity("v1").unwrap();
        assert_eq!(store.current().value(v1, "pace"), Some(Value::str("fast")));
        // Different visitor within window: no match.
        let r = eng.on_event(&sensor(60, "v2", "lobby"), &mut store);
        assert_eq!(r.fired, 0);
    }

    #[test]
    fn action_errors_are_reported_not_fatal() {
        let mut store = TemporalStore::new();
        let mut eng = RuleEngine::new();
        eng.add_rule(
            StateRule::new("bad", Trigger::on("s"))
                .action(Action::Retract {
                    entity: EntityRef::field("user"),
                    attr: Symbol::intern("nope"),
                    value: Expr::lit(1i64),
                })
                .action(Action::Assert {
                    entity: EntityRef::field("user"),
                    attr: Symbol::intern("ok"),
                    value: Expr::lit(1i64),
                }),
        )
        .unwrap();
        let r = eng.on_event(&Event::from_pairs("s", 1u64, [("user", "u")]), &mut store);
        assert_eq!(r.errors.len(), 1, "retract of absent fact errored");
        let u = store.lookup_entity("u").unwrap();
        assert_eq!(
            store.current().value(u, "ok"),
            Some(Value::Int(1)),
            "later actions still ran"
        );
    }

    #[test]
    fn fixed_named_entity_target() {
        let mut store = TemporalStore::new();
        let mut eng = RuleEngine::new();
        eng.add_rule(
            StateRule::new("counter", Trigger::on("s")).action(Action::Replace {
                entity: EntityRef::named("global"),
                attr: Symbol::intern("last_event"),
                value: Expr::name("ts"),
            }),
        )
        .unwrap();
        eng.on_event(&Event::from_pairs("s", 42u64, [("x", 1i64)]), &mut store);
        let g = store.lookup_entity("global").unwrap();
        assert_eq!(
            store.current().value(g, "last_event"),
            Some(Value::Time(Timestamp::new(42)))
        );
    }
}
