//! Property tests for the temporal store: model-based testing against a
//! naive reference implementation, WAL replay equivalence, codec
//! round-trips, and interval invariants.

use fenestra_base::time::Timestamp;
use fenestra_temporal::{AttrSchema, Cardinality, EntityId, TemporalStore, WalCodec};
use proptest::prelude::*;

const ATTR_ONE: &str = "room"; // cardinality-one
const ATTR_MANY: &str = "tag"; // cardinality-many

/// A randomly generated store operation over a small domain.
#[derive(Debug, Clone)]
enum Op {
    ReplaceOne { e: u64, v: i64 },
    AssertMany { e: u64, v: i64 },
    RetractMany { e: u64, v: i64 },
    RetractEntity { e: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..4u64, 0..5i64).prop_map(|(e, v)| Op::ReplaceOne { e, v }),
        (0..4u64, 0..5i64).prop_map(|(e, v)| Op::AssertMany { e, v }),
        (0..4u64, 0..5i64).prop_map(|(e, v)| Op::RetractMany { e, v }),
        (0..4u64).prop_map(|e| Op::RetractEntity { e }),
    ]
}

/// Naive reference model: a flat list of (entity, attr, value, start,
/// end) rows, mutated with the documented semantics.
#[derive(Default, Clone)]
struct Naive {
    rows: Vec<(u64, &'static str, i64, u64, Option<u64>)>,
}

impl Naive {
    fn open_rows(&self, e: u64, a: &str) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.0 == e && r.1 == a && r.4.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    fn apply(&mut self, op: &Op, t: u64) {
        match *op {
            Op::ReplaceOne { e, v } => {
                let open = self.open_rows(e, ATTR_ONE);
                if open.len() == 1 && self.rows[open[0]].2 == v {
                    return; // idempotent replace
                }
                for i in open {
                    self.rows[i].4 = Some(t);
                }
                self.rows.push((e, ATTR_ONE, v, t, None));
            }
            Op::AssertMany { e, v } => {
                if self
                    .open_rows(e, ATTR_MANY)
                    .iter()
                    .any(|&i| self.rows[i].2 == v)
                {
                    return; // idempotent assert
                }
                self.rows.push((e, ATTR_MANY, v, t, None));
            }
            Op::RetractMany { e, v } => {
                if let Some(&i) = self
                    .open_rows(e, ATTR_MANY)
                    .iter()
                    .find(|&&i| self.rows[i].2 == v)
                {
                    self.rows[i].4 = Some(t);
                }
            }
            Op::RetractEntity { e } => {
                for r in self.rows.iter_mut() {
                    if r.0 == e && r.4.is_none() {
                        r.4 = Some(t);
                    }
                }
            }
        }
    }

    fn valid_at(&self, e: u64, a: &str, t: u64) -> Vec<i64> {
        let mut out: Vec<i64> = self
            .rows
            .iter()
            .filter(|r| r.0 == e && r.1 == a && r.3 <= t && r.4.is_none_or(|end| t < end))
            .map(|r| r.2)
            .collect();
        out.sort_unstable();
        out
    }
}

fn build_both(ops: &[Op]) -> (TemporalStore, Naive, u64) {
    let mut store = TemporalStore::new();
    store.declare_attr(ATTR_ONE, AttrSchema::one());
    store.declare_attr(ATTR_MANY, AttrSchema::many());
    let mut naive = Naive::default();
    let mut t = 0u64;
    for op in ops {
        t += 1; // strictly increasing event time
        let ts = Timestamp::new(t);
        match *op {
            Op::ReplaceOne { e, v } => {
                store.replace_at(EntityId(e), ATTR_ONE, v, ts).unwrap();
            }
            Op::AssertMany { e, v } => {
                store.assert_at(EntityId(e), ATTR_MANY, v, ts).unwrap();
            }
            Op::RetractMany { e, v } => {
                // Mirror the naive model: retract only if open.
                if store.current().holds(EntityId(e), ATTR_MANY, v) {
                    store.retract_at(EntityId(e), ATTR_MANY, v, ts).unwrap();
                }
            }
            Op::RetractEntity { e } => {
                store.retract_entity_at(EntityId(e), ts).unwrap();
            }
        }
        naive.apply(op, t);
    }
    (store, naive, t)
}

fn store_values_at(store: &TemporalStore, e: u64, a: &str, t: u64) -> Vec<i64> {
    let mut out: Vec<i64> = store
        .as_of(Timestamp::new(t))
        .values(EntityId(e), a)
        .into_iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store's as-of view agrees with the naive model at every
    /// instant, for every (entity, attribute) pair.
    #[test]
    fn as_of_matches_naive_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let (store, naive, t_max) = build_both(&ops);
        for t in 0..=t_max + 1 {
            for e in 0..4u64 {
                for a in [ATTR_ONE, ATTR_MANY] {
                    let got = store_values_at(&store, e, a, t);
                    let want = naive.valid_at(e, a, t);
                    prop_assert_eq!(&got, &want, "mismatch at t={} e={} a={}", t, e, a);
                }
            }
        }
    }

    /// The current view equals the as-of view at the end of time.
    #[test]
    fn current_equals_as_of_infinity(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let (store, _, _) = build_both(&ops);
        let current: Vec<_> = store.current().facts().map(|f| f.fact).collect();
        let mut at_max: Vec<_> = store
            .as_of(Timestamp::MAX)
            .facts()
            .into_iter()
            .map(|f| f.fact)
            .collect();
        let mut cur_sorted = current;
        cur_sorted.sort();
        at_max.sort();
        prop_assert_eq!(cur_sorted, at_max);
    }

    /// Replaying the WAL reconstructs an observably identical store.
    #[test]
    fn wal_replay_reconstructs(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let (store, _, t_max) = build_both(&ops);
        let replayed = TemporalStore::replay(store.wal()).unwrap();
        prop_assert_eq!(replayed.open_fact_count(), store.open_fact_count());
        prop_assert_eq!(replayed.stored_fact_count(), store.stored_fact_count());
        prop_assert_eq!(replayed.revision(), store.revision());
        for t in [0, t_max / 2, t_max] {
            for e in 0..4u64 {
                for a in [ATTR_ONE, ATTR_MANY] {
                    prop_assert_eq!(
                        store_values_at(&replayed, e, a, t),
                        store_values_at(&store, e, a, t)
                    );
                }
            }
        }
    }

    /// The binary WAL codec is lossless.
    #[test]
    fn wal_codec_round_trips(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let (store, _, _) = build_both(&ops);
        let encoded = WalCodec::encode(store.wal());
        let decoded = WalCodec::decode(&encoded).unwrap();
        prop_assert_eq!(decoded.as_slice(), store.wal());
    }

    /// Cardinality-one attributes never hold two overlapping validity
    /// intervals for the same entity.
    #[test]
    fn cardinality_one_no_overlap(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let (store, _, _) = build_both(&ops);
        let schema = store.schema();
        for e in 0..4u64 {
            let hist = store.history(EntityId(e), ATTR_ONE);
            prop_assert_eq!(
                schema.of(fenestra_base::symbol::Symbol::intern(ATTR_ONE)).cardinality,
                Cardinality::One
            );
            for i in 0..hist.len() {
                for j in i + 1..hist.len() {
                    prop_assert!(
                        !hist[i].0.overlaps(&hist[j].0),
                        "overlap between {} and {}",
                        hist[i].0,
                        hist[j].0
                    );
                }
            }
        }
    }

    /// GC never changes the current state, only history before the
    /// horizon.
    #[test]
    fn gc_preserves_current_state(
        ops in prop::collection::vec(op_strategy(), 1..60),
        horizon_frac in 0.0f64..1.0
    ) {
        let (mut store, _, t_max) = build_both(&ops);
        let before: Vec<_> = {
            let mut v: Vec<_> = store.current().facts().map(|f| f.fact).collect();
            v.sort();
            v
        };
        let horizon = Timestamp::new((t_max as f64 * horizon_frac) as u64);
        store.gc(horizon);
        let after: Vec<_> = {
            let mut v: Vec<_> = store.current().facts().map(|f| f.fact).collect();
            v.sort();
            v
        };
        prop_assert_eq!(before, after);
        // And as-of *after* the horizon is also unaffected relative to
        // a fresh replay (history at or before the horizon may differ).
        let pristine = TemporalStore::replay(store.wal()).unwrap();
        for t in (horizon.millis() + 1)..=t_max + 1 {
            for e in 0..4u64 {
                for a in [ATTR_ONE, ATTR_MANY] {
                    prop_assert_eq!(
                        store_values_at(&store, e, a, t),
                        store_values_at(&pristine, e, a, t),
                        "post-horizon as-of drifted at t={}", t
                    );
                }
            }
        }
    }

    /// Serde snapshot persistence is lossless.
    #[test]
    fn persist_round_trips(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let (store, _, t_max) = build_both(&ops);
        let json = fenestra_temporal::persist::to_json(&store).unwrap();
        let loaded = fenestra_temporal::persist::from_json(&json).unwrap();
        prop_assert_eq!(loaded.open_fact_count(), store.open_fact_count());
        for e in 0..4u64 {
            for a in [ATTR_ONE, ATTR_MANY] {
                prop_assert_eq!(
                    store_values_at(&loaded, e, a, t_max),
                    store_values_at(&store, e, a, t_max)
                );
            }
        }
    }
}
