//! Read views over the store: current state and as-of-instant state.

use crate::fact::{AttrId, FactId, StoredFact};
use crate::store::TemporalStore;
use fenestra_base::time::Timestamp;
use fenestra_base::value::{EntityId, Value};

/// A view of the currently valid facts (open intervals), backed by the
/// store's live indexes — O(1) to construct.
#[derive(Clone, Copy)]
pub struct CurrentView<'a> {
    pub(crate) store: &'a TemporalStore,
}

impl<'a> CurrentView<'a> {
    /// Iterate every open fact, ordered by entity.
    pub fn facts(&self) -> impl Iterator<Item = &'a StoredFact> + '_ {
        self.store
            .open_by_entity
            .values()
            .flat_map(|ids| ids.iter())
            .filter_map(|id| self.store.get(*id))
    }

    /// Number of open facts.
    pub fn len(&self) -> usize {
        self.store.open_fact_count()
    }

    /// Whether no fact is currently valid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The single current value of `(entity, attr)`. For
    /// cardinality-many attributes with several open values this
    /// returns the most recently asserted one.
    pub fn value(&self, entity: EntityId, attr: impl Into<AttrId>) -> Option<Value> {
        let attr = attr.into();
        let ids = self.store.open_by_ea.get(&(entity, attr))?;
        ids.last()
            .and_then(|id| self.store.get(*id))
            .map(|f| f.fact.value)
    }

    /// All current values of `(entity, attr)` in assertion order.
    pub fn values(&self, entity: EntityId, attr: impl Into<AttrId>) -> Vec<Value> {
        let attr = attr.into();
        self.store
            .open_by_ea
            .get(&(entity, attr))
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| self.store.get(*id))
                    .map(|f| f.fact.value)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether `(entity, attr, value)` is currently valid.
    pub fn holds(
        &self,
        entity: EntityId,
        attr: impl Into<AttrId>,
        value: impl Into<Value>,
    ) -> bool {
        let attr = attr.into();
        let value = value.into();
        self.store
            .open_by_ea
            .get(&(entity, attr))
            .is_some_and(|ids| {
                ids.iter()
                    .any(|id| self.store.get(*id).is_some_and(|f| f.fact.value == value))
            })
    }

    /// Open facts about one entity.
    pub fn entity_facts(&self, entity: EntityId) -> impl Iterator<Item = &'a StoredFact> + '_ {
        self.store
            .open_by_entity
            .get(&entity)
            .into_iter()
            .flat_map(|ids| ids.iter())
            .filter_map(|id| self.store.get(*id))
    }

    /// Open facts carrying one attribute (any entity).
    pub fn attr_facts(&self, attr: impl Into<AttrId>) -> impl Iterator<Item = &'a StoredFact> + '_ {
        let attr = attr.into();
        self.store
            .open_by_attr
            .get(&attr)
            .into_iter()
            .flat_map(|ids| ids.iter())
            .filter_map(|id| self.store.get(*id))
    }

    /// Entities for which `(attr, value)` is currently valid — the
    /// reverse lookup behind state-gated processing ("only active
    /// users").
    pub fn entities_with(&self, attr: impl Into<AttrId>, value: impl Into<Value>) -> Vec<EntityId> {
        let key = (attr.into(), value.into());
        self.store
            .open_by_attr_value
            .get(&key)
            .map(|ids| {
                let mut out: Vec<EntityId> = ids
                    .iter()
                    .filter_map(|id| self.store.get(*id))
                    .map(|f| f.fact.entity)
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .unwrap_or_default()
    }

    /// Number of entities with at least one open fact for `attr`.
    pub fn entity_count_with_attr(&self, attr: impl Into<AttrId>) -> usize {
        let attr = attr.into();
        self.store
            .open_by_attr
            .get(&attr)
            .map(|ids| {
                let mut entities: Vec<EntityId> = ids
                    .iter()
                    .filter_map(|id| self.store.get(*id))
                    .map(|f| f.fact.entity)
                    .collect();
                entities.sort_unstable();
                entities.dedup();
                entities.len()
            })
            .unwrap_or(0)
    }
}

/// A view of the state as it was valid at one past instant `t`,
/// answered from the per-`(entity, attribute)` timelines.
#[derive(Clone, Copy)]
pub struct AsOfView<'a> {
    pub(crate) store: &'a TemporalStore,
    pub(crate) t: Timestamp,
}

impl<'a> AsOfView<'a> {
    /// The probe instant.
    pub fn at(&self) -> Timestamp {
        self.t
    }

    fn valid(&self, id: FactId) -> Option<&'a StoredFact> {
        self.store.get(id).filter(|f| f.validity.contains(self.t))
    }

    /// The value of `(entity, attr)` valid at `t` (newest if several).
    pub fn value(&self, entity: EntityId, attr: impl Into<AttrId>) -> Option<Value> {
        let attr = attr.into();
        let tl = self.store.timelines.get(&(entity, attr))?;
        tl.candidates_at(self.t)
            .find_map(|id| self.valid(id))
            .map(|f| f.fact.value)
    }

    /// All values of `(entity, attr)` valid at `t`.
    pub fn values(&self, entity: EntityId, attr: impl Into<AttrId>) -> Vec<Value> {
        let attr = attr.into();
        let Some(tl) = self.store.timelines.get(&(entity, attr)) else {
            return Vec::new();
        };
        let mut out: Vec<Value> = tl
            .candidates_at(self.t)
            .filter_map(|id| self.valid(id))
            .map(|f| f.fact.value)
            .collect();
        out.reverse(); // assertion order
        out
    }

    /// Whether `(entity, attr, value)` was valid at `t`.
    pub fn holds(
        &self,
        entity: EntityId,
        attr: impl Into<AttrId>,
        value: impl Into<Value>,
    ) -> bool {
        let attr = attr.into();
        let value = value.into();
        self.store.timelines.get(&(entity, attr)).is_some_and(|tl| {
            tl.candidates_at(self.t)
                .filter_map(|id| self.valid(id))
                .any(|f| f.fact.value == value)
        })
    }

    /// Every fact valid at `t` (ordered by entity, then attribute).
    pub fn facts(&self) -> Vec<&'a StoredFact> {
        let mut out = Vec::new();
        for tl in self.store.timelines.values() {
            for id in tl.candidates_at(self.t) {
                if let Some(f) = self.valid(id) {
                    out.push(f);
                }
            }
        }
        out
    }

    /// Facts valid at `t` carrying `attr`.
    pub fn attr_facts(&self, attr: impl Into<AttrId>) -> Vec<&'a StoredFact> {
        let attr = attr.into();
        let mut out = Vec::new();
        if let Some(entities) = self.store.attr_entities.get(&attr) {
            for &e in entities {
                if let Some(tl) = self.store.timelines.get(&(e, attr)) {
                    for id in tl.candidates_at(self.t) {
                        if let Some(f) = self.valid(id) {
                            out.push(f);
                        }
                    }
                }
            }
        }
        out
    }

    /// Entities for which `(attr, value)` was valid at `t`.
    pub fn entities_with(&self, attr: impl Into<AttrId>, value: impl Into<Value>) -> Vec<EntityId> {
        let attr = attr.into();
        let value = value.into();
        let mut out: Vec<EntityId> = self
            .attr_facts(attr)
            .into_iter()
            .filter(|f| f.fact.value == value)
            .map(|f| f.fact.entity)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrSchema;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    fn sample() -> (TemporalStore, EntityId, EntityId) {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let a = s.named_entity("a");
        let b = s.named_entity("b");
        s.replace_at(a, "room", "lobby", ts(10)).unwrap();
        s.replace_at(b, "room", "lobby", ts(12)).unwrap();
        s.replace_at(a, "room", "lab", ts(20)).unwrap();
        s.assert_at(a, "tag", "vip", ts(11)).unwrap();
        (s, a, b)
    }

    #[test]
    fn current_view_basics() {
        let (s, a, b) = sample();
        let cur = s.current();
        assert_eq!(cur.len(), 3);
        assert!(!cur.is_empty());
        assert_eq!(cur.value(a, "room"), Some(Value::str("lab")));
        assert_eq!(cur.value(b, "room"), Some(Value::str("lobby")));
        assert!(cur.holds(a, "tag", "vip"));
        assert!(!cur.holds(a, "room", "lobby"));
        assert_eq!(cur.entity_facts(a).count(), 2);
        assert_eq!(cur.attr_facts("room").count(), 2);
        assert_eq!(cur.entities_with("room", "lobby"), vec![b]);
        assert_eq!(cur.entity_count_with_attr("room"), 2);
    }

    #[test]
    fn as_of_view_basics() {
        let (s, a, b) = sample();
        let v15 = s.as_of(ts(15));
        assert_eq!(v15.at(), ts(15));
        assert_eq!(v15.value(a, "room"), Some(Value::str("lobby")));
        assert!(v15.holds(a, "tag", "vip"));
        let both = v15.entities_with("room", "lobby");
        assert_eq!(both, vec![a, b]);
        // Before anything: empty.
        assert!(s.as_of(ts(5)).facts().is_empty());
        // Between: exactly the valid facts.
        assert_eq!(v15.facts().len(), 3);
        assert_eq!(v15.attr_facts("room").len(), 2);
    }

    #[test]
    fn as_of_multi_value_attribute() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.assert_at(e, "tag", "x", ts(1)).unwrap();
        s.assert_at(e, "tag", "y", ts(2)).unwrap();
        s.retract_at(e, "tag", "x", ts(5)).unwrap();
        let v3 = s.as_of(ts(3));
        assert_eq!(v3.values(e, "tag"), vec![Value::str("x"), Value::str("y")]);
        let v7 = s.as_of(ts(7));
        assert_eq!(v7.values(e, "tag"), vec![Value::str("y")]);
    }
}
