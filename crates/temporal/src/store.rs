//! The temporal fact store.

use crate::fact::{AttrId, Fact, FactId, Provenance, StoredFact};
use crate::schema::{AttrSchema, Cardinality, Schema};
use crate::snapshot::{AsOfView, CurrentView};
use crate::stats::StoreStats;
use crate::timeline::Timeline;
use crate::wal::WalOp;
use fenestra_base::error::{Error, Result};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Interval, Timestamp};
use fenestra_base::value::{EntityId, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Outcome of a [`TemporalStore::replace_at`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaceOutcome {
    /// Facts whose validity was closed by the replacement.
    pub closed: Vec<FactId>,
    /// The fact now holding the value (newly asserted, or the existing
    /// one when the value was unchanged).
    pub fact: FactId,
    /// Whether the state actually changed.
    pub changed: bool,
}

/// The state repository: an EAV fact store with validity intervals.
///
/// See the [crate docs](crate) for the model. All mutating operations
/// take the *event time* at which the transition happens; the store
/// never consults a wall clock.
#[derive(Debug, Default)]
pub struct TemporalStore {
    /// Fact arena; `FactId` indexes it. GC tombstones slots to `None`
    /// so ids stay stable.
    pub(crate) arena: Vec<Option<StoredFact>>,
    pub(crate) schema: Schema,
    /// Open facts per entity (deterministic iteration order).
    pub(crate) open_by_entity: BTreeMap<EntityId, BTreeSet<FactId>>,
    /// Open facts per attribute.
    pub(crate) open_by_attr: BTreeMap<AttrId, BTreeSet<FactId>>,
    /// Open facts per (attribute, value) — reverse lookup.
    pub(crate) open_by_attr_value: HashMap<(AttrId, Value), BTreeSet<FactId>>,
    /// Open facts per (entity, attribute) — cardinality checks.
    pub(crate) open_by_ea: HashMap<(EntityId, AttrId), Vec<FactId>>,
    /// Full history per (entity, attribute).
    pub(crate) timelines: BTreeMap<(EntityId, AttrId), Timeline>,
    /// Entities that ever carried an attribute (for as-of scans).
    pub(crate) attr_entities: BTreeMap<AttrId, BTreeSet<EntityId>>,
    /// Greatest closed-interval end per (entity, attribute): O(1)
    /// retroactive-overlap checks for cardinality-one attributes.
    pub(crate) max_closed_end: HashMap<(EntityId, AttrId), Timestamp>,
    /// Named entity directory.
    entity_names: HashMap<Symbol, EntityId>,
    entity_names_rev: HashMap<EntityId, Symbol>,
    next_entity: u64,
    /// Monotone revision counter; bumps on every state change.
    revision: u64,
    /// Latest transition time seen.
    last_transition: Timestamp,
    /// Journal of all mutations (see [`crate::wal`]).
    wal: Vec<WalOp>,
    wal_enabled: bool,
    stats: StoreStats,
}

impl TemporalStore {
    /// An empty store with WAL journaling enabled.
    pub fn new() -> TemporalStore {
        TemporalStore {
            wal_enabled: true,
            ..TemporalStore::default()
        }
    }

    /// An empty store that does not journal (saves memory in benches).
    pub fn without_wal() -> TemporalStore {
        TemporalStore::default()
    }

    // ----- schema & entities ------------------------------------------------

    /// Declare an attribute's schema.
    pub fn declare_attr(&mut self, attr: impl Into<AttrId>, schema: AttrSchema) {
        let attr = attr.into();
        self.schema.declare(attr, schema);
        self.journal(WalOp::DeclareAttr { attr, schema });
    }

    /// The effective schema of `attr`.
    pub fn attr_schema(&self, attr: AttrId) -> AttrSchema {
        self.schema.of(attr)
    }

    /// Allocate a fresh anonymous entity.
    pub fn new_entity(&mut self) -> EntityId {
        let e = EntityId(self.next_entity);
        self.next_entity += 1;
        self.journal(WalOp::NewEntity { name: None });
        e
    }

    /// Get or create the entity registered under `name`.
    pub fn named_entity(&mut self, name: impl Into<Symbol>) -> EntityId {
        let name = name.into();
        if let Some(&e) = self.entity_names.get(&name) {
            return e;
        }
        let e = EntityId(self.next_entity);
        self.next_entity += 1;
        self.entity_names.insert(name, e);
        self.entity_names_rev.insert(e, name);
        self.journal(WalOp::NewEntity { name: Some(name) });
        e
    }

    /// Look up a named entity without creating it.
    pub fn lookup_entity(&self, name: impl Into<Symbol>) -> Option<EntityId> {
        self.entity_names.get(&name.into()).copied()
    }

    /// The registered name of an entity, if any.
    pub fn entity_name(&self, e: EntityId) -> Option<Symbol> {
        self.entity_names_rev.get(&e).copied()
    }

    // ----- mutation ---------------------------------------------------------

    /// Assert that `(entity, attr, value)` is valid from `t` on.
    ///
    /// * Cardinality-many: idempotent if an identical open fact exists.
    /// * Cardinality-one: rejected if a *different* value is currently
    ///   open, or if `t` would retroactively overlap a closed value —
    ///   use [`TemporalStore::replace_at`] to transition.
    pub fn assert_at(
        &mut self,
        entity: EntityId,
        attr: impl Into<AttrId>,
        value: impl Into<Value>,
        t: Timestamp,
    ) -> Result<FactId> {
        let attr = attr.into();
        let value = value.into();
        self.assert_with(entity, attr, value, t, Provenance::External)
    }

    /// [`TemporalStore::assert_at`] with explicit provenance (rules and
    /// the reasoner use this).
    pub fn assert_with(
        &mut self,
        entity: EntityId,
        attr: AttrId,
        value: Value,
        t: Timestamp,
        provenance: Provenance,
    ) -> Result<FactId> {
        // Idempotence: identical open fact.
        if let Some(existing) = self.open_fact_with_value(entity, attr, value) {
            return Ok(existing);
        }
        if self.schema.of(attr).cardinality == Cardinality::One {
            if let Some(ids) = self.open_by_ea.get(&(entity, attr)) {
                if let Some(&id) = ids.first() {
                    let f = self.arena[id.0 as usize].as_ref().expect("open fact live");
                    return Err(Error::Store(format!(
                        "cardinality-one conflict: {} {} already holds {} (open since {}); use replace",
                        entity, attr, f.fact.value, f.validity.start
                    )));
                }
            }
            if let Some(&end) = self.max_closed_end.get(&(entity, attr)) {
                if end > t {
                    return Err(Error::Store(format!(
                        "retroactive overlap: {} {} has history up to {} but assert at {}",
                        entity, attr, end, t
                    )));
                }
            }
        }
        let id = self.insert_open(Fact::new(entity, attr, value), t, provenance);
        self.journal(WalOp::Assert {
            entity,
            attr,
            value,
            t,
            provenance,
        });
        self.touch(t);
        self.stats.asserts += 1;
        Ok(id)
    }

    /// Close the validity of the open fact `(entity, attr, value)` at `t`.
    pub fn retract_at(
        &mut self,
        entity: EntityId,
        attr: impl Into<AttrId>,
        value: impl Into<Value>,
        t: Timestamp,
    ) -> Result<FactId> {
        let attr = attr.into();
        let value = value.into();
        let id = self
            .open_fact_with_value(entity, attr, value)
            .ok_or_else(|| {
                Error::Store(format!("retract of absent fact ({entity} {attr} {value})"))
            })?;
        self.close_fact(id, t)?;
        self.journal(WalOp::Retract {
            entity,
            attr,
            value,
            t,
        });
        self.touch(t);
        self.stats.retracts += 1;
        Ok(id)
    }

    /// Close *all* open facts for `(entity, attr)` at `t` and assert
    /// `value` — the paper's invalidate-and-update primitive.
    ///
    /// Idempotent: if the sole open value already equals `value`, the
    /// state is untouched and `changed` is `false`.
    pub fn replace_at(
        &mut self,
        entity: EntityId,
        attr: impl Into<AttrId>,
        value: impl Into<Value>,
        t: Timestamp,
    ) -> Result<ReplaceOutcome> {
        let attr = attr.into();
        let value = value.into();
        self.replace_with(entity, attr, value, t, Provenance::External)
    }

    /// [`TemporalStore::replace_at`] with explicit provenance.
    pub fn replace_with(
        &mut self,
        entity: EntityId,
        attr: AttrId,
        value: Value,
        t: Timestamp,
        provenance: Provenance,
    ) -> Result<ReplaceOutcome> {
        let open: Vec<FactId> = self
            .open_by_ea
            .get(&(entity, attr))
            .cloned()
            .unwrap_or_default();
        // Idempotent shortcut: single open fact with the same value.
        if open.len() == 1 {
            let f = self.arena[open[0].0 as usize]
                .as_ref()
                .expect("open fact live");
            if f.fact.value == value {
                return Ok(ReplaceOutcome {
                    closed: Vec::new(),
                    fact: open[0],
                    changed: false,
                });
            }
        }
        // Validate all closes before mutating anything.
        for &id in &open {
            let f = self.arena[id.0 as usize].as_ref().expect("open fact live");
            if t < f.validity.start {
                return Err(Error::Store(format!(
                    "replace at {} precedes open fact start {} for ({entity} {attr})",
                    t, f.validity.start
                )));
            }
        }
        for &id in &open {
            self.close_fact(id, t).expect("validated close");
        }
        let fact = self.insert_open(Fact::new(entity, attr, value), t, provenance);
        self.journal(WalOp::Replace {
            entity,
            attr,
            value,
            t,
            provenance,
        });
        self.touch(t);
        self.stats.replaces += 1;
        Ok(ReplaceOutcome {
            closed: open,
            fact,
            changed: true,
        })
    }

    /// Close every open fact about `entity` at `t` (e.g. a visitor
    /// leaves the building). Returns the closed fact ids.
    pub fn retract_entity_at(&mut self, entity: EntityId, t: Timestamp) -> Result<Vec<FactId>> {
        let open: Vec<FactId> = self
            .open_by_entity
            .get(&entity)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for &id in &open {
            let f = self.arena[id.0 as usize].as_ref().expect("open fact live");
            if t < f.validity.start {
                return Err(Error::Store(format!(
                    "entity retract at {} precedes open fact start {}",
                    t, f.validity.start
                )));
            }
        }
        for &id in &open {
            self.close_fact(id, t).expect("validated close");
        }
        if !open.is_empty() {
            self.journal(WalOp::RetractEntity { entity, t });
            self.touch(t);
        }
        self.stats.retracts += open.len() as u64;
        Ok(open)
    }

    // ----- reads ------------------------------------------------------------

    /// A stored fact by id (`None` if GC'd).
    pub fn get(&self, id: FactId) -> Option<&StoredFact> {
        self.arena.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// View of the currently valid state.
    pub fn current(&self) -> CurrentView<'_> {
        CurrentView { store: self }
    }

    /// View of the state as it was valid at instant `t`.
    pub fn as_of(&self, t: Timestamp) -> AsOfView<'_> {
        AsOfView { store: self, t }
    }

    /// Full timeline of `(entity, attr)`: `(interval, value, provenance)`
    /// in validity-start order.
    pub fn history(
        &self,
        entity: EntityId,
        attr: impl Into<AttrId>,
    ) -> Vec<(Interval, Value, Provenance)> {
        let attr = attr.into();
        let Some(tl) = self.timelines.get(&(entity, attr)) else {
            return Vec::new();
        };
        tl.entries()
            .iter()
            .filter_map(|e| self.get(e.id))
            .map(|f| (f.validity, f.fact.value, f.provenance))
            .collect()
    }

    /// Every stored fact whose validity overlaps `[from, to)`.
    pub fn during(&self, from: Timestamp, to: Timestamp) -> Vec<&StoredFact> {
        let mut out = Vec::new();
        for tl in self.timelines.values() {
            for id in tl.candidates_overlapping(to) {
                if let Some(f) = self.get(id) {
                    if f.validity.overlaps_range(from, to) {
                        out.push(f);
                    }
                }
            }
        }
        out
    }

    /// Number of currently open facts.
    pub fn open_fact_count(&self) -> usize {
        self.open_by_entity.values().map(|s| s.len()).sum()
    }

    /// Number of live (non-GC'd) stored facts, open or closed.
    pub fn stored_fact_count(&self) -> usize {
        self.arena.iter().filter(|s| s.is_some()).count()
    }

    /// Monotone revision counter (bumps on each state change).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The latest transition time applied to the store.
    pub fn last_transition(&self) -> Timestamp {
        self.last_transition
    }

    /// Mutation counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Iterate the registered named entities.
    pub fn named_entities(&self) -> impl Iterator<Item = (Symbol, EntityId)> + '_ {
        self.entity_names.iter().map(|(n, e)| (*n, *e))
    }

    /// The attributes with at least one currently open fact, with their
    /// open-fact counts (deterministic order).
    pub fn open_attr_counts(&self) -> Vec<(AttrId, usize)> {
        self.open_by_attr
            .iter()
            .map(|(a, ids)| (*a, ids.len()))
            .collect()
    }

    // ----- WAL --------------------------------------------------------------

    /// The journal of every mutation since creation — or, once a log
    /// writer is draining it via [`TemporalStore::take_journal`], since
    /// the last drain. Empty if the store was built with
    /// [`TemporalStore::without_wal`].
    pub fn wal(&self) -> &[WalOp] {
        &self.wal
    }

    /// Drain the in-memory journal, returning the ops accumulated since
    /// the last drain. This is how a durable log writer keeps the
    /// journal's memory bounded: append the returned batch to disk and
    /// the Vec starts over empty.
    pub fn take_journal(&mut self) -> Vec<WalOp> {
        std::mem::take(&mut self.wal)
    }

    /// Number of ops currently buffered in the in-memory journal.
    pub fn journal_len(&self) -> usize {
        self.wal.len()
    }

    /// A minimal op sequence reconstructing the *current* store —
    /// O(live state) where the full journal is O(all history ever).
    /// Checkpoints write this instead of the journal, so snapshot size
    /// tracks the state, not the ingest volume.
    ///
    /// Replaying the sequence preserves everything observable: schema,
    /// named-entity ids, open facts, closed history with provenance.
    /// Not preserved: fact ids and anonymous-entity ids beyond the last
    /// named entity (both unobservable through queries), and the
    /// retroactive-overlap watermark of fully GC'd `(entity, attr)`
    /// pairs.
    pub fn compact_ops(&self) -> Vec<WalOp> {
        let mut ops = Vec::new();
        // Schema, in deterministic (attr-name) order.
        let mut attrs: Vec<(AttrId, AttrSchema)> = self.schema.iter().collect();
        attrs.sort_by_key(|(a, _)| *a);
        for (attr, schema) in attrs {
            ops.push(WalOp::DeclareAttr { attr, schema });
        }
        // Entity directory: named ids must replay identically, so
        // allocations are emitted in id order with anonymous fillers
        // between them.
        let hi = self
            .entity_names_rev
            .keys()
            .map(|e| e.0 + 1)
            .max()
            .unwrap_or(0);
        for id in 0..hi {
            ops.push(WalOp::NewEntity {
                name: self.entity_names_rev.get(&EntityId(id)).copied(),
            });
        }
        // Facts, one timeline at a time. Closed intervals first (each
        // assert immediately closed, so a later identical value can
        // never hit the open-fact idempotence shortcut and merge), then
        // the open facts; both in validity-start order.
        for ((e, a), tl) in &self.timelines {
            let mut open = Vec::new();
            for entry in tl.entries() {
                let Some(f) = self.get(entry.id) else {
                    continue;
                };
                match f.validity.end {
                    Some(end) => {
                        ops.push(WalOp::Assert {
                            entity: *e,
                            attr: *a,
                            value: f.fact.value,
                            t: f.validity.start,
                            provenance: f.provenance,
                        });
                        ops.push(WalOp::Retract {
                            entity: *e,
                            attr: *a,
                            value: f.fact.value,
                            t: end,
                        });
                    }
                    None => open.push(WalOp::Assert {
                        entity: *e,
                        attr: *a,
                        value: f.fact.value,
                        t: f.validity.start,
                        provenance: f.provenance,
                    }),
                }
            }
            ops.extend(open);
        }
        ops
    }

    /// A *fork*: an independent store reconstructing this store's state
    /// as it stood after the last transition at or before `t` — the
    /// basis for what-if analysis ("replay the afternoon with different
    /// rules"). Untimed journal entries (declarations, entity
    /// allocations) are always included; GC passes whose horizon lies
    /// beyond `t` are skipped. Requires the WAL (empty on stores built
    /// with [`TemporalStore::without_wal`], which yields an empty fork).
    pub fn fork_at(&self, t: Timestamp) -> Result<TemporalStore> {
        let prefix: Vec<WalOp> = self
            .wal
            .iter()
            .filter(|op| match op {
                WalOp::Assert { t: ot, .. }
                | WalOp::Retract { t: ot, .. }
                | WalOp::Replace { t: ot, .. }
                | WalOp::RetractEntity { t: ot, .. } => *ot <= t,
                WalOp::Gc { horizon } => *horizon <= t,
                WalOp::DeclareAttr { .. } | WalOp::NewEntity { .. } => true,
            })
            .cloned()
            .collect();
        TemporalStore::replay(&prefix)
    }

    /// Rebuild a store by replaying a journal.
    pub fn replay(ops: &[WalOp]) -> Result<TemporalStore> {
        let mut s = TemporalStore::new();
        for op in ops {
            s.apply(op)?;
        }
        Ok(s)
    }

    /// Apply a single journal entry.
    pub fn apply(&mut self, op: &WalOp) -> Result<()> {
        match *op {
            WalOp::DeclareAttr { attr, schema } => {
                self.declare_attr(attr, schema);
                Ok(())
            }
            WalOp::NewEntity { name } => {
                match name {
                    Some(n) => {
                        self.named_entity(n);
                    }
                    None => {
                        self.new_entity();
                    }
                }
                Ok(())
            }
            WalOp::Assert {
                entity,
                attr,
                value,
                t,
                provenance,
            } => self
                .assert_with(entity, attr, value, t, provenance)
                .map(|_| ()),
            WalOp::Retract {
                entity,
                attr,
                value,
                t,
            } => self.retract_at(entity, attr, value, t).map(|_| ()),
            WalOp::Replace {
                entity,
                attr,
                value,
                t,
                provenance,
            } => self
                .replace_with(entity, attr, value, t, provenance)
                .map(|_| ()),
            WalOp::RetractEntity { entity, t } => self.retract_entity_at(entity, t).map(|_| ()),
            WalOp::Gc { horizon } => {
                self.gc(horizon);
                Ok(())
            }
        }
    }

    // ----- TTL expiry ---------------------------------------------------------

    /// Expire open facts of TTL-declared attributes whose `start + ttl`
    /// lies at or before `now`: their validity closes at exactly
    /// `start + ttl`. Returns the expired facts as
    /// `(entity, attr, value, expired_at)`.
    ///
    /// Idempotent per instant; the engine calls this as the watermark
    /// advances, so expiry is driven by event time like everything
    /// else.
    pub fn expire_ttl(&mut self, now: Timestamp) -> Vec<(EntityId, AttrId, Value, Timestamp)> {
        let ttl_attrs: Vec<(AttrId, fenestra_base::time::Duration)> = self
            .schema
            .iter()
            .filter_map(|(a, s)| s.ttl.map(|ttl| (a, ttl)))
            .collect();
        let mut expired = Vec::new();
        for (attr, ttl) in ttl_attrs {
            let victims: Vec<(EntityId, Value, Timestamp)> = self
                .open_by_attr
                .get(&attr)
                .map(|ids| {
                    ids.iter()
                        .filter_map(|id| self.get(*id))
                        .filter(|f| f.validity.start.saturating_add(ttl) <= now)
                        .map(|f| {
                            (
                                f.fact.entity,
                                f.fact.value,
                                f.validity.start.saturating_add(ttl),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            for (e, v, at) in victims {
                // retract_at journals the close like any retraction.
                if self.retract_at(e, attr, v, at).is_ok() {
                    expired.push((e, attr, v, at));
                }
            }
        }
        expired
    }

    // ----- GC ---------------------------------------------------------------

    /// Reclaim closed facts whose validity ended at or before `horizon`,
    /// plus all closed facts of attributes declared
    /// [`AttrSchema::ephemeral`]. Open facts are never reclaimed. Fact
    /// ids of reclaimed facts become dangling (lookups return `None`).
    ///
    /// Returns the number of facts reclaimed.
    pub fn gc(&mut self, horizon: Timestamp) -> usize {
        self.journal(WalOp::Gc { horizon });
        let mut reclaimed = 0;
        let victims: Vec<FactId> = self
            .arena
            .iter()
            .flatten()
            .filter(|f| {
                let Some(end) = f.validity.end else {
                    return false;
                };
                end <= horizon || !self.schema.of(f.fact.attr).keep_history
            })
            .map(|f| f.id)
            .collect();
        for id in victims {
            let f = self.arena[id.0 as usize].take().expect("victim live");
            let key = (f.fact.entity, f.fact.attr);
            if let Some(tl) = self.timelines.get_mut(&key) {
                tl.remove(id);
                if tl.is_empty() {
                    self.timelines.remove(&key);
                    // Entity no longer has any record of this attribute.
                    if let Some(set) = self.attr_entities.get_mut(&f.fact.attr) {
                        set.remove(&f.fact.entity);
                        if set.is_empty() {
                            self.attr_entities.remove(&f.fact.attr);
                        }
                    }
                }
            }
            reclaimed += 1;
        }
        self.stats.gcs += 1;
        self.stats.reclaimed += reclaimed as u64;
        reclaimed
    }

    // ----- internals --------------------------------------------------------

    fn open_fact_with_value(&self, entity: EntityId, attr: AttrId, value: Value) -> Option<FactId> {
        let ids = self.open_by_ea.get(&(entity, attr))?;
        ids.iter().copied().find(|id| {
            self.arena[id.0 as usize]
                .as_ref()
                .is_some_and(|f| f.fact.value == value)
        })
    }

    fn insert_open(&mut self, fact: Fact, t: Timestamp, provenance: Provenance) -> FactId {
        let id = FactId(self.arena.len() as u64);
        self.arena.push(Some(StoredFact {
            id,
            fact,
            validity: Interval::open(t),
            provenance,
        }));
        let (e, a, v) = (fact.entity, fact.attr, fact.value);
        self.open_by_entity.entry(e).or_default().insert(id);
        self.open_by_attr.entry(a).or_default().insert(id);
        self.open_by_attr_value
            .entry((a, v))
            .or_default()
            .insert(id);
        self.open_by_ea.entry((e, a)).or_default().push(id);
        self.timelines.entry((e, a)).or_default().insert(t, id);
        self.attr_entities.entry(a).or_default().insert(e);
        if self.next_entity <= e.0 {
            // Entities referenced without allocation still advance the
            // allocator so replay/new_entity never collides with them.
            self.next_entity = e.0 + 1;
        }
        id
    }

    fn close_fact(&mut self, id: FactId, end: Timestamp) -> Result<()> {
        let f = self.arena[id.0 as usize]
            .as_mut()
            .ok_or_else(|| Error::Store(format!("close of reclaimed fact {id}")))?;
        if !f.validity.close_at(end) {
            return Err(Error::Store(format!(
                "cannot close {} at {} (starts {})",
                id, end, f.validity.start
            )));
        }
        let (e, a, v) = (f.fact.entity, f.fact.attr, f.fact.value);
        if let Some(s) = self.open_by_entity.get_mut(&e) {
            s.remove(&id);
            if s.is_empty() {
                self.open_by_entity.remove(&e);
            }
        }
        if let Some(s) = self.open_by_attr.get_mut(&a) {
            s.remove(&id);
            if s.is_empty() {
                self.open_by_attr.remove(&a);
            }
        }
        if let Some(s) = self.open_by_attr_value.get_mut(&(a, v)) {
            s.remove(&id);
            if s.is_empty() {
                self.open_by_attr_value.remove(&(a, v));
            }
        }
        if let Some(s) = self.open_by_ea.get_mut(&(e, a)) {
            s.retain(|x| *x != id);
            if s.is_empty() {
                self.open_by_ea.remove(&(e, a));
            }
        }
        let slot = self.max_closed_end.entry((e, a)).or_insert(end);
        if *slot < end {
            *slot = end;
        }
        Ok(())
    }

    fn touch(&mut self, t: Timestamp) {
        self.revision += 1;
        if t > self.last_transition {
            self.last_transition = t;
        }
    }

    fn journal(&mut self, op: WalOp) {
        if self.wal_enabled {
            self.wal.push(op);
        }
    }

    /// The declared attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn assert_and_current() {
        let mut s = TemporalStore::new();
        let alice = s.named_entity("alice");
        s.assert_at(alice, "status", "active", ts(10)).unwrap();
        let cur = s.current();
        assert_eq!(cur.value(alice, "status"), Some(Value::str("active")));
        assert_eq!(s.open_fact_count(), 1);
    }

    #[test]
    fn assert_is_idempotent_for_identical_open_fact() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        let a = s.assert_at(e, "tag", "x", ts(1)).unwrap();
        let b = s.assert_at(e, "tag", "x", ts(5)).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.stored_fact_count(), 1);
    }

    #[test]
    fn cardinality_one_rejects_conflicting_assert() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.new_entity();
        s.assert_at(v, "room", "lobby", ts(1)).unwrap();
        let err = s.assert_at(v, "room", "hall", ts(5)).unwrap_err();
        assert!(matches!(err, Error::Store(_)));
        // Same value is fine (idempotent).
        s.assert_at(v, "room", "lobby", ts(5)).unwrap();
    }

    #[test]
    fn cardinality_many_allows_multiple_values() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.assert_at(e, "tag", "a", ts(1)).unwrap();
        s.assert_at(e, "tag", "b", ts(2)).unwrap();
        let mut vals = s.current().values(e, "tag");
        vals.sort();
        assert_eq!(vals, vec![Value::str("a"), Value::str("b")]);
    }

    #[test]
    fn replace_closes_previous_value() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.new_entity();
        s.replace_at(v, "room", "lobby", ts(1)).unwrap();
        let out = s.replace_at(v, "room", "hall", ts(5)).unwrap();
        assert!(out.changed);
        assert_eq!(out.closed.len(), 1);
        assert_eq!(s.current().value(v, "room"), Some(Value::str("hall")));
        // History shows both, first closed at 5.
        let h = s.history(v, "room");
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].0, Interval::closed(ts(1), ts(5)));
        assert_eq!(h[0].1, Value::str("lobby"));
        assert!(h[1].0.is_open());
    }

    #[test]
    fn replace_same_value_is_noop() {
        let mut s = TemporalStore::new();
        let v = s.new_entity();
        s.replace_at(v, "room", "lobby", ts(1)).unwrap();
        let out = s.replace_at(v, "room", "lobby", ts(9)).unwrap();
        assert!(!out.changed);
        assert!(out.closed.is_empty());
        assert_eq!(s.history(v, "room").len(), 1, "no new interval started");
    }

    #[test]
    fn retract_closes_interval_and_errors_on_absent() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.assert_at(e, "status", "active", ts(1)).unwrap();
        s.retract_at(e, "status", "active", ts(7)).unwrap();
        assert_eq!(s.current().value(e, "status"), None);
        assert_eq!(s.open_fact_count(), 0);
        let err = s.retract_at(e, "status", "active", ts(8)).unwrap_err();
        assert!(matches!(err, Error::Store(_)));
    }

    #[test]
    fn close_before_start_rejected() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.assert_at(e, "x", 1i64, ts(10)).unwrap();
        let err = s.retract_at(e, "x", 1i64, ts(5)).unwrap_err();
        assert!(matches!(err, Error::Store(_)));
        // Still open.
        assert_eq!(s.current().value(e, "x"), Some(Value::Int(1)));
    }

    #[test]
    fn retroactive_overlap_rejected_for_cardinality_one() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.new_entity();
        s.replace_at(v, "room", "a", ts(10)).unwrap();
        s.replace_at(v, "room", "b", ts(20)).unwrap();
        s.retract_at(v, "room", "b", ts(30)).unwrap();
        // Asserting into [10,30) history would create overlap.
        let err = s.assert_at(v, "room", "c", ts(25)).unwrap_err();
        assert!(matches!(err, Error::Store(_)));
        // After the history's end it's fine.
        s.assert_at(v, "room", "c", ts(30)).unwrap();
    }

    #[test]
    fn as_of_reads_past_state() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("visitor1");
        s.replace_at(v, "room", "lobby", ts(10)).unwrap();
        s.replace_at(v, "room", "lab", ts(20)).unwrap();
        s.replace_at(v, "room", "exit", ts(30)).unwrap();
        assert_eq!(s.as_of(ts(5)).value(v, "room"), None);
        assert_eq!(s.as_of(ts(10)).value(v, "room"), Some(Value::str("lobby")));
        assert_eq!(s.as_of(ts(19)).value(v, "room"), Some(Value::str("lobby")));
        assert_eq!(s.as_of(ts(20)).value(v, "room"), Some(Value::str("lab")));
        assert_eq!(s.as_of(ts(99)).value(v, "room"), Some(Value::str("exit")));
        assert_eq!(s.current().value(v, "room"), Some(Value::str("exit")));
    }

    #[test]
    fn retract_entity_closes_everything() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.assert_at(e, "a", 1i64, ts(1)).unwrap();
        s.assert_at(e, "b", 2i64, ts(2)).unwrap();
        let closed = s.retract_entity_at(e, ts(9)).unwrap();
        assert_eq!(closed.len(), 2);
        assert_eq!(s.open_fact_count(), 0);
        assert_eq!(s.as_of(ts(5)).value(e, "a"), Some(Value::Int(1)));
    }

    #[test]
    fn during_finds_overlapping_facts() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.assert_at(e, "x", 1i64, ts(0)).unwrap();
        s.retract_at(e, "x", 1i64, ts(10)).unwrap();
        s.assert_at(e, "x", 2i64, ts(10)).unwrap();
        s.retract_at(e, "x", 2i64, ts(20)).unwrap();
        s.assert_at(e, "x", 3i64, ts(20)).unwrap();
        let vals: Vec<Value> = s
            .during(ts(5), ts(15))
            .iter()
            .map(|f| f.fact.value)
            .collect();
        assert_eq!(vals.len(), 2);
        assert!(vals.contains(&Value::Int(1)) && vals.contains(&Value::Int(2)));
        let all = s.during(ts(0), ts(100));
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn wal_replay_reproduces_store() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("v");
        s.replace_at(v, "room", "a", ts(1)).unwrap();
        s.replace_at(v, "room", "b", ts(5)).unwrap();
        s.assert_at(v, "badge", 7i64, ts(6)).unwrap();
        s.retract_at(v, "badge", 7i64, ts(8)).unwrap();

        let r = TemporalStore::replay(s.wal()).unwrap();
        assert_eq!(r.open_fact_count(), s.open_fact_count());
        assert_eq!(r.stored_fact_count(), s.stored_fact_count());
        assert_eq!(r.current().value(v, "room"), Some(Value::str("b")));
        assert_eq!(r.history(v, "room"), s.history(v, "room"));
        assert_eq!(r.lookup_entity("v"), Some(v));
    }

    #[test]
    fn gc_reclaims_closed_history() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.replace_at(e, "room", "a", ts(1)).unwrap();
        s.replace_at(e, "room", "b", ts(5)).unwrap();
        s.replace_at(e, "room", "c", ts(9)).unwrap();
        assert_eq!(s.stored_fact_count(), 3);
        let n = s.gc(ts(6));
        assert_eq!(n, 1, "only [1,5) ended by the t6 horizon");
        assert_eq!(s.stored_fact_count(), 2);
        // Current state unaffected; as-of before the horizon now empty.
        assert_eq!(s.current().value(e, "room"), Some(Value::str("c")));
        assert_eq!(s.as_of(ts(2)).value(e, "room"), None);
        assert_eq!(s.as_of(ts(6)).value(e, "room"), Some(Value::str("b")));
        assert_eq!(s.history(e, "room").len(), 2);
        // A later horizon reclaims the rest of the closed history.
        assert_eq!(s.gc(ts(100)), 1);
        assert_eq!(s.stored_fact_count(), 1);
    }

    #[test]
    fn gc_ephemeral_attrs_reclaims_regardless_of_horizon() {
        let mut s = TemporalStore::new();
        s.declare_attr("ping", AttrSchema::many().ephemeral());
        let e = s.new_entity();
        s.assert_at(e, "ping", 1i64, ts(1)).unwrap();
        s.retract_at(e, "ping", 1i64, ts(100)).unwrap();
        let n = s.gc(ts(0));
        assert_eq!(n, 1);
    }

    #[test]
    fn revision_and_last_transition_advance() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        assert_eq!(s.revision(), 0);
        s.assert_at(e, "x", 1i64, ts(5)).unwrap();
        let r1 = s.revision();
        assert!(r1 > 0);
        assert_eq!(s.last_transition(), ts(5));
        s.retract_at(e, "x", 1i64, ts(9)).unwrap();
        assert!(s.revision() > r1);
        assert_eq!(s.last_transition(), ts(9));
    }

    #[test]
    fn named_entities_are_stable() {
        let mut s = TemporalStore::new();
        let a1 = s.named_entity("alice");
        let a2 = s.named_entity("alice");
        assert_eq!(a1, a2);
        assert_eq!(s.entity_name(a1), Some(Symbol::intern("alice")));
        assert_eq!(s.lookup_entity("bob"), None);
        let b = s.named_entity("bob");
        assert_ne!(a1, b);
    }

    #[test]
    fn external_entity_ids_advance_allocator() {
        let mut s = TemporalStore::new();
        s.assert_at(EntityId(100), "x", 1i64, ts(1)).unwrap();
        let e = s.new_entity();
        assert!(e.0 > 100, "allocator must skip externally used ids");
    }

    #[test]
    fn take_journal_drains_and_memory_stays_bounded() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.assert_at(e, "x", 1i64, ts(1)).unwrap();
        let before = s.journal_len();
        assert!(before > 0);
        let drained = s.take_journal();
        assert_eq!(drained.len(), before);
        assert_eq!(s.journal_len(), 0, "drain resets the Vec");
        // Subsequent mutations journal only themselves, not history.
        s.retract_at(e, "x", 1i64, ts(5)).unwrap();
        assert_eq!(s.journal_len(), 1);
        assert_eq!(s.take_journal().len(), 1);
        // The two drains concatenated replay to the same store.
        let mut all = drained;
        all.push(WalOp::Retract {
            entity: e,
            attr: crate::fact::AttrId::from("x"),
            value: Value::Int(1),
            t: ts(5),
        });
        let r = TemporalStore::replay(&all).unwrap();
        assert_eq!(r.stored_fact_count(), s.stored_fact_count());
        assert_eq!(r.open_fact_count(), 0);
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    fn assert_equivalent(original: &TemporalStore) {
        let compact = original.compact_ops();
        let r = TemporalStore::replay(&compact).expect("compact ops must replay");
        assert_eq!(r.open_fact_count(), original.open_fact_count());
        assert_eq!(r.stored_fact_count(), original.stored_fact_count());
        for (name, e) in original.named_entities() {
            assert_eq!(
                r.lookup_entity(name),
                Some(e),
                "named entity {name} keeps its id"
            );
            for (attr, _) in original.schema.iter() {
                assert_eq!(
                    r.history(e, attr),
                    original.history(e, attr),
                    "history of {name} {attr}"
                );
            }
        }
    }

    #[test]
    fn compact_ops_is_o_live_state_not_o_history() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("v");
        for i in 1..=100u64 {
            s.replace_at(v, "room", format!("r{i}").as_str(), ts(i))
                .unwrap();
        }
        s.gc(ts(90)); // reclaim most of the closed history
        let full = s.wal().len();
        let compact = s.compact_ops().len();
        assert!(
            compact < full / 2,
            "compact {compact} ops should be far below the {full}-op journal"
        );
        assert_equivalent(&s);
    }

    #[test]
    fn compact_preserves_schema_names_history_and_provenance() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        s.declare_attr(
            "last_seen",
            AttrSchema::one().with_ttl(fenestra_base::time::Duration::millis(30)),
        );
        let a = s.named_entity("alice");
        let _anon = s.new_entity();
        let b = s.named_entity("bob");
        s.replace_at(a, "room", "lobby", ts(1)).unwrap();
        s.replace_with(
            a,
            AttrId::from("room"),
            Value::str("lab"),
            ts(5),
            Provenance::Rule(Symbol::intern("mv")),
        )
        .unwrap();
        s.assert_at(b, "badge", 7i64, ts(3)).unwrap();
        s.retract_at(b, "badge", 7i64, ts(9)).unwrap();
        assert_equivalent(&s);
        let r = TemporalStore::replay(&s.compact_ops()).unwrap();
        assert_eq!(
            r.attr_schema(AttrId::from("last_seen")).ttl,
            Some(fenestra_base::time::Duration::millis(30))
        );
        let h = r.history(a, "room");
        assert_eq!(h[1].2, Provenance::Rule(Symbol::intern("mv")));
    }

    #[test]
    fn compact_survives_identical_overlapping_intervals() {
        // Cardinality-many allows an open fact whose interval overlaps
        // a closed one with the same value; replay order must not merge
        // them through the idempotence shortcut.
        let mut s = TemporalStore::new();
        let e = s.named_entity("e");
        s.assert_at(e, "tag", "x", ts(20)).unwrap();
        s.retract_at(e, "tag", "x", ts(30)).unwrap();
        s.assert_at(e, "tag", "x", ts(10)).unwrap(); // open, starts earlier
        assert_eq!(s.history(e, "tag").len(), 2);
        assert_equivalent(&s);
    }

    #[test]
    fn compact_of_empty_store_is_empty() {
        assert!(TemporalStore::new().compact_ops().is_empty());
        assert_equivalent(&TemporalStore::new());
    }
}

#[cfg(test)]
mod ttl_tests {
    use super::*;
    use fenestra_base::time::Duration;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn ttl_expires_open_facts_at_exact_instant() {
        let mut s = TemporalStore::new();
        s.declare_attr("status", AttrSchema::one().with_ttl(Duration::millis(30)));
        let u = s.named_entity("u");
        s.replace_at(u, "status", "active", ts(10)).unwrap();
        assert!(s.expire_ttl(ts(39)).is_empty(), "not yet");
        let expired = s.expire_ttl(ts(40));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].3, ts(40), "closes at start + ttl, not at now");
        assert_eq!(s.current().value(u, "status"), None);
        // Validity interval ends exactly at start + ttl.
        let h = s.history(u, "status");
        assert_eq!(h[0].0, Interval::closed(ts(10), ts(40)));
        // Idempotent.
        assert!(s.expire_ttl(ts(100)).is_empty());
    }

    #[test]
    fn refresh_via_replace_restarts_the_clock() {
        let mut s = TemporalStore::new();
        s.declare_attr("status", AttrSchema::one().with_ttl(Duration::millis(30)));
        let u = s.named_entity("u");
        s.replace_at(u, "status", "active", ts(10)).unwrap();
        // A refresh at t25 must restart the TTL window: close + reopen.
        s.retract_at(u, "status", "active", ts(25)).unwrap();
        s.replace_at(u, "status", "active", ts(25)).unwrap();
        assert!(
            s.expire_ttl(ts(40)).is_empty(),
            "refreshed at 25, expires at 55"
        );
        let expired = s.expire_ttl(ts(55));
        assert_eq!(expired.len(), 1);
    }

    #[test]
    fn ttl_survives_wal_replay() {
        let mut s = TemporalStore::new();
        s.declare_attr("ping", AttrSchema::many().with_ttl(Duration::millis(5)));
        let u = s.named_entity("u");
        s.assert_at(u, "ping", 1i64, ts(1)).unwrap();
        s.expire_ttl(ts(10));
        let r = TemporalStore::replay(s.wal()).unwrap();
        assert_eq!(r.open_fact_count(), 0, "expiry retraction replayed");
        assert_eq!(
            r.schema()
                .of(fenestra_base::symbol::Symbol::intern("ping"))
                .ttl,
            Some(Duration::millis(5))
        );
    }

    #[test]
    fn non_ttl_attrs_untouched() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let u = s.named_entity("u");
        s.replace_at(u, "room", "lobby", ts(1)).unwrap();
        assert!(s.expire_ttl(ts(1_000_000)).is_empty());
        assert!(s.current().value(u, "room").is_some());
    }
}

#[cfg(test)]
mod fork_tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn fork_reconstructs_past_and_diverges_independently() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("v");
        s.replace_at(v, "room", "a", ts(10)).unwrap();
        s.replace_at(v, "room", "b", ts(20)).unwrap();
        s.replace_at(v, "room", "c", ts(30)).unwrap();

        let mut fork = s.fork_at(ts(25)).unwrap();
        let fv = fork.lookup_entity("v").unwrap();
        assert_eq!(fork.current().value(fv, "room"), Some(Value::str("b")));
        assert_eq!(fork.history(fv, "room").len(), 2);

        // The fork diverges without touching the original.
        fork.replace_at(fv, "room", "z", ts(26)).unwrap();
        assert_eq!(fork.current().value(fv, "room"), Some(Value::str("z")));
        assert_eq!(s.current().value(v, "room"), Some(Value::str("c")));

        // Fork at (or before) time zero is empty of facts but keeps the
        // schema and directory prefix.
        let empty = s.fork_at(ts(5)).unwrap();
        assert_eq!(empty.open_fact_count(), 0);
        assert!(empty.lookup_entity("v").is_some());
    }

    #[test]
    fn fork_matches_as_of_for_every_instant() {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("v");
        for i in 1..=10u64 {
            s.replace_at(v, "room", format!("r{i}").as_str(), ts(i * 10))
                .unwrap();
        }
        for probe in (0..=110u64).step_by(7) {
            let fork = s.fork_at(ts(probe)).unwrap();
            let fv = fork.lookup_entity("v").unwrap();
            assert_eq!(
                fork.current().value(fv, "room"),
                s.as_of(ts(probe)).value(v, "room"),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn fork_skips_future_gc() {
        let mut s = TemporalStore::new();
        let v = s.new_entity();
        s.replace_at(v, "x", 1i64, ts(10)).unwrap();
        s.replace_at(v, "x", 2i64, ts(20)).unwrap();
        s.gc(ts(100)); // reclaims the closed [10,20) fact
        let fork = s.fork_at(ts(15)).unwrap();
        assert_eq!(
            fork.history(v, "x").len(),
            1,
            "fork at 15 predates the GC and sees the then-open fact"
        );
        assert_eq!(fork.current().value(v, "x"), Some(Value::Int(1)));
    }
}
