//! Write-ahead journal of store mutations.
//!
//! Every mutating call on [`crate::TemporalStore`] appends a [`WalOp`].
//! Replaying the journal reconstructs the store byte-for-byte (see
//! `TemporalStore::replay`), which backs both durability and the
//! replay-based baseline of experiment E4.
//!
//! [`WalCodec`] provides a compact length-prefixed binary encoding
//! (via `bytes`) suitable for appending to a log file.

use crate::fact::{AttrId, Provenance};
use crate::schema::{AttrSchema, Cardinality};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fenestra_base::error::{Error, Result};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::{EntityId, Value};

/// One journaled mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalOp {
    /// Attribute declaration.
    DeclareAttr {
        /// Attribute name.
        attr: AttrId,
        /// Declared schema.
        schema: AttrSchema,
    },
    /// Entity allocation (named or anonymous) — recorded so replay
    /// allocates identical ids.
    NewEntity {
        /// Registered name, if any.
        name: Option<Symbol>,
    },
    /// Fact assertion.
    Assert {
        /// Entity.
        entity: EntityId,
        /// Attribute.
        attr: AttrId,
        /// Value.
        value: Value,
        /// Validity start.
        t: Timestamp,
        /// Who asserted.
        provenance: Provenance,
    },
    /// Fact retraction (interval close).
    Retract {
        /// Entity.
        entity: EntityId,
        /// Attribute.
        attr: AttrId,
        /// Value.
        value: Value,
        /// Validity end.
        t: Timestamp,
    },
    /// Invalidate-and-update.
    Replace {
        /// Entity.
        entity: EntityId,
        /// Attribute.
        attr: AttrId,
        /// New value.
        value: Value,
        /// Transition time.
        t: Timestamp,
        /// Who replaced.
        provenance: Provenance,
    },
    /// Close all open facts of an entity.
    RetractEntity {
        /// Entity.
        entity: EntityId,
        /// Transition time.
        t: Timestamp,
    },
    /// Garbage collection pass: closed facts ending at or before the
    /// horizon were reclaimed. Journaled so a snapshot of a GC'd store
    /// does not resurrect reclaimed history on load.
    Gc {
        /// The reclamation horizon.
        horizon: Timestamp,
    },
}

/// Binary encoder/decoder for WAL streams.
pub struct WalCodec;

const TAG_DECLARE: u8 = 1;
const TAG_NEW_ENTITY: u8 = 2;
const TAG_ASSERT: u8 = 3;
const TAG_RETRACT: u8 = 4;
const TAG_REPLACE: u8 = 5;
const TAG_RETRACT_ENTITY: u8 = 6;
const TAG_GC: u8 = 7;

const VTAG_NULL: u8 = 0;
const VTAG_BOOL: u8 = 1;
const VTAG_INT: u8 = 2;
const VTAG_FLOAT: u8 = 3;
const VTAG_STR: u8 = 4;
const VTAG_ID: u8 = 5;
const VTAG_TIME: u8 = 6;

impl WalCodec {
    /// Encode a sequence of ops into one buffer.
    pub fn encode(ops: &[WalOp]) -> Bytes {
        let mut buf = BytesMut::with_capacity(ops.len() * 32);
        for op in ops {
            Self::encode_op(op, &mut buf);
        }
        buf.freeze()
    }

    /// Append one op to `buf`.
    pub fn encode_op(op: &WalOp, buf: &mut BytesMut) {
        match op {
            WalOp::DeclareAttr { attr, schema } => {
                buf.put_u8(TAG_DECLARE);
                put_sym(buf, *attr);
                buf.put_u8(match schema.cardinality {
                    Cardinality::One => 1,
                    Cardinality::Many => 2,
                });
                buf.put_u8(schema.keep_history as u8);
                // u64::MAX encodes "no TTL".
                buf.put_u64(schema.ttl.map(|d| d.as_millis()).unwrap_or(u64::MAX));
            }
            WalOp::NewEntity { name } => {
                buf.put_u8(TAG_NEW_ENTITY);
                match name {
                    Some(n) => {
                        buf.put_u8(1);
                        put_sym(buf, *n);
                    }
                    None => buf.put_u8(0),
                }
            }
            WalOp::Assert {
                entity,
                attr,
                value,
                t,
                provenance,
            } => {
                buf.put_u8(TAG_ASSERT);
                buf.put_u64(entity.0);
                put_sym(buf, *attr);
                put_value(buf, *value);
                buf.put_u64(t.0);
                put_prov(buf, *provenance);
            }
            WalOp::Retract {
                entity,
                attr,
                value,
                t,
            } => {
                buf.put_u8(TAG_RETRACT);
                buf.put_u64(entity.0);
                put_sym(buf, *attr);
                put_value(buf, *value);
                buf.put_u64(t.0);
            }
            WalOp::Replace {
                entity,
                attr,
                value,
                t,
                provenance,
            } => {
                buf.put_u8(TAG_REPLACE);
                buf.put_u64(entity.0);
                put_sym(buf, *attr);
                put_value(buf, *value);
                buf.put_u64(t.0);
                put_prov(buf, *provenance);
            }
            WalOp::RetractEntity { entity, t } => {
                buf.put_u8(TAG_RETRACT_ENTITY);
                buf.put_u64(entity.0);
                buf.put_u64(t.0);
            }
            WalOp::Gc { horizon } => {
                buf.put_u8(TAG_GC);
                buf.put_u64(horizon.0);
            }
        }
    }

    /// Decode every op from a buffer produced by [`WalCodec::encode`].
    pub fn decode(mut data: &[u8]) -> Result<Vec<WalOp>> {
        let mut out = Vec::new();
        while data.has_remaining() {
            out.push(Self::decode_op(&mut data)?);
        }
        Ok(out)
    }

    fn decode_op(buf: &mut &[u8]) -> Result<WalOp> {
        let tag = get_u8(buf)?;
        Ok(match tag {
            TAG_DECLARE => {
                let attr = get_sym(buf)?;
                let card = match get_u8(buf)? {
                    1 => Cardinality::One,
                    2 => Cardinality::Many,
                    x => return Err(Error::Corrupt(format!("bad cardinality tag {x}"))),
                };
                let keep_history = get_u8(buf)? != 0;
                let ttl_raw = get_u64(buf)?;
                let ttl = if ttl_raw == u64::MAX {
                    None
                } else {
                    Some(fenestra_base::time::Duration::millis(ttl_raw))
                };
                WalOp::DeclareAttr {
                    attr,
                    schema: AttrSchema {
                        cardinality: card,
                        keep_history,
                        ttl,
                    },
                }
            }
            TAG_NEW_ENTITY => {
                let name = if get_u8(buf)? == 1 {
                    Some(get_sym(buf)?)
                } else {
                    None
                };
                WalOp::NewEntity { name }
            }
            TAG_ASSERT => WalOp::Assert {
                entity: EntityId(get_u64(buf)?),
                attr: get_sym(buf)?,
                value: get_value(buf)?,
                t: Timestamp(get_u64(buf)?),
                provenance: get_prov(buf)?,
            },
            TAG_RETRACT => WalOp::Retract {
                entity: EntityId(get_u64(buf)?),
                attr: get_sym(buf)?,
                value: get_value(buf)?,
                t: Timestamp(get_u64(buf)?),
            },
            TAG_REPLACE => WalOp::Replace {
                entity: EntityId(get_u64(buf)?),
                attr: get_sym(buf)?,
                value: get_value(buf)?,
                t: Timestamp(get_u64(buf)?),
                provenance: get_prov(buf)?,
            },
            TAG_RETRACT_ENTITY => WalOp::RetractEntity {
                entity: EntityId(get_u64(buf)?),
                t: Timestamp(get_u64(buf)?),
            },
            TAG_GC => WalOp::Gc {
                horizon: Timestamp(get_u64(buf)?),
            },
            x => return Err(Error::Corrupt(format!("unknown WAL op tag {x}"))),
        })
    }
}

fn put_sym(buf: &mut BytesMut, s: Symbol) {
    let bytes = s.as_str().as_bytes();
    buf.put_u32(bytes.len() as u32);
    buf.put_slice(bytes);
}

fn put_value(buf: &mut BytesMut, v: Value) {
    match v {
        Value::Null => buf.put_u8(VTAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(VTAG_BOOL);
            buf.put_u8(b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(VTAG_INT);
            buf.put_i64(i);
        }
        Value::Float(f) => {
            buf.put_u8(VTAG_FLOAT);
            buf.put_f64(f);
        }
        Value::Str(s) => {
            buf.put_u8(VTAG_STR);
            put_sym(buf, s);
        }
        Value::Id(e) => {
            buf.put_u8(VTAG_ID);
            buf.put_u64(e.0);
        }
        Value::Time(t) => {
            buf.put_u8(VTAG_TIME);
            buf.put_u64(t.0);
        }
    }
}

fn put_prov(buf: &mut BytesMut, p: Provenance) {
    match p {
        Provenance::External => buf.put_u8(0),
        Provenance::Rule(r) => {
            buf.put_u8(1);
            put_sym(buf, r);
        }
        Provenance::Derived(r) => {
            buf.put_u8(2);
            put_sym(buf, r);
        }
    }
}

fn get_prov(buf: &mut &[u8]) -> Result<Provenance> {
    Ok(match get_u8(buf)? {
        0 => Provenance::External,
        1 => Provenance::Rule(get_sym(buf)?),
        2 => Provenance::Derived(get_sym(buf)?),
        x => return Err(Error::Corrupt(format!("unknown provenance tag {x}"))),
    })
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if !buf.has_remaining() {
        return Err(Error::Corrupt("truncated WAL (u8)".into()));
    }
    Ok(buf.get_u8())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(Error::Corrupt("truncated WAL (u64)".into()));
    }
    Ok(buf.get_u64())
}

fn get_sym(buf: &mut &[u8]) -> Result<Symbol> {
    if buf.remaining() < 4 {
        return Err(Error::Corrupt("truncated WAL (sym len)".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(Error::Corrupt("truncated WAL (sym body)".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| Error::Corrupt("non-utf8 symbol in WAL".into()))?;
    let sym = Symbol::intern(s);
    buf.advance(len);
    Ok(sym)
}

fn get_value(buf: &mut &[u8]) -> Result<Value> {
    Ok(match get_u8(buf)? {
        VTAG_NULL => Value::Null,
        VTAG_BOOL => Value::Bool(get_u8(buf)? != 0),
        VTAG_INT => {
            if buf.remaining() < 8 {
                return Err(Error::Corrupt("truncated WAL (int)".into()));
            }
            Value::Int(buf.get_i64())
        }
        VTAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(Error::Corrupt("truncated WAL (float)".into()));
            }
            Value::Float(buf.get_f64())
        }
        VTAG_STR => Value::Str(get_sym(buf)?),
        VTAG_ID => Value::Id(EntityId(get_u64(buf)?)),
        VTAG_TIME => Value::Time(Timestamp(get_u64(buf)?)),
        x => return Err(Error::Corrupt(format!("unknown value tag {x}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::DeclareAttr {
                attr: Symbol::intern("room"),
                schema: AttrSchema::one(),
            },
            WalOp::NewEntity {
                name: Some(Symbol::intern("alice")),
            },
            WalOp::NewEntity { name: None },
            WalOp::Assert {
                entity: EntityId(0),
                attr: Symbol::intern("room"),
                value: Value::str("lobby"),
                t: Timestamp(10),
                provenance: Provenance::External,
            },
            WalOp::Replace {
                entity: EntityId(0),
                attr: Symbol::intern("room"),
                value: Value::str("lab"),
                t: Timestamp(20),
                provenance: Provenance::Rule(Symbol::intern("move")),
            },
            WalOp::Retract {
                entity: EntityId(0),
                attr: Symbol::intern("room"),
                value: Value::str("lab"),
                t: Timestamp(30),
            },
            WalOp::RetractEntity {
                entity: EntityId(0),
                t: Timestamp(40),
            },
            WalOp::Gc {
                horizon: Timestamp(35),
            },
            WalOp::Assert {
                entity: EntityId(1),
                attr: Symbol::intern("score"),
                value: Value::Float(1.5),
                t: Timestamp(11),
                provenance: Provenance::Derived(Symbol::intern("subclass")),
            },
            WalOp::Assert {
                entity: EntityId(1),
                attr: Symbol::intern("flag"),
                value: Value::Bool(true),
                t: Timestamp(12),
                provenance: Provenance::External,
            },
            WalOp::Assert {
                entity: EntityId(1),
                attr: Symbol::intern("ref"),
                value: Value::Id(EntityId(0)),
                t: Timestamp(13),
                provenance: Provenance::External,
            },
            WalOp::Assert {
                entity: EntityId(1),
                attr: Symbol::intern("when"),
                value: Value::Time(Timestamp(99)),
                t: Timestamp(14),
                provenance: Provenance::External,
            },
            WalOp::Assert {
                entity: EntityId(1),
                attr: Symbol::intern("nul"),
                value: Value::Null,
                t: Timestamp(15),
                provenance: Provenance::External,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let ops = sample_ops();
        let bytes = WalCodec::encode(&ops);
        let back = WalCodec::decode(&bytes).unwrap();
        assert_eq!(ops, back);
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let ops = sample_ops();
        let bytes = WalCodec::encode(&ops);
        for cut in [1usize, 3, 7, bytes.len() - 1] {
            let err = WalCodec::decode(&bytes[..cut]);
            assert!(
                matches!(err, Err(Error::Corrupt(_))),
                "cut at {cut} must yield Corrupt"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let err = WalCodec::decode(&[0xFF]);
        assert!(matches!(err, Err(Error::Corrupt(_))));
    }

    #[test]
    fn empty_input_is_empty_log() {
        assert_eq!(WalCodec::decode(&[]).unwrap(), Vec::new());
    }
}
