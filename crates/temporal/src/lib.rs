#![warn(missing_docs)]
//! # fenestra-temporal
//!
//! The **state repository** of the Fenestra system: a temporal fact
//! store in which every state element is "annotated with its time of
//! validity" (Margara et al., EDBT 2017, §3).
//!
//! ## Data model
//!
//! State is a set of EAV facts `(entity, attribute, value)` — a model
//! isomorphic to RDF triples, which keeps the door open for the
//! reasoning component. Each stored fact carries a half-open validity
//! interval `[start, end)`; an open end means *currently valid*.
//!
//! ## Operations
//!
//! * [`TemporalStore::assert_at`] — a fact becomes valid at `t`.
//! * [`TemporalStore::retract_at`] — an open fact stops being valid at
//!   `t` (its interval is closed, the history is kept).
//! * [`TemporalStore::replace_at`] — the paper's invalidation
//!   primitive: "the most recent position *invalidates and updates*
//!   any previous position of the same visitor". Atomically closes all
//!   open facts for `(entity, attribute)` and asserts the new value.
//!
//! ## Queries
//!
//! * [`TemporalStore::current`] — snapshot of the open facts, index
//!   backed.
//! * [`TemporalStore::as_of`] — the state as it was valid at any past
//!   instant (per-`(e,a)` timelines, binary searched).
//! * [`TemporalStore::history`] — the full timeline of an
//!   `(entity, attribute)` pair.
//! * [`TemporalStore::during`] — every fact whose validity overlaps a
//!   range.
//!
//! ## Durability
//!
//! Every mutation is journaled to a write-ahead [`wal::WalOp`] log
//! that can be encoded to bytes and replayed; full snapshots
//! round-trip through JSON ([`persist`]). [`wal_file`] puts the
//! journal on disk for real: CRC-framed appends with configurable
//! fsync policy, generation-numbered segments rotated at snapshot
//! time, and torn-tail-tolerant crash recovery
//! ([`wal_file::recover`]).

pub mod fact;
pub mod persist;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod timeline;
pub mod wal;
pub mod wal_file;

pub use fact::{AttrId, Fact, FactId, Provenance, StoredFact};
pub use schema::{AttrSchema, Cardinality};
pub use snapshot::{AsOfView, CurrentView};
pub use stats::StoreStats;
pub use store::TemporalStore;
pub use wal::{WalCodec, WalOp};
pub use wal_file::{FsyncPolicy, LogTail, Recovery, WalWriter, WalWriterStats};

pub use fenestra_base::value::EntityId;
