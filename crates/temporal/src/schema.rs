//! Attribute schema: cardinality declarations.
//!
//! The store distinguishes *cardinality-one* attributes (a visitor's
//! current room, a product's current class) from *cardinality-many*
//! attributes (a product's tags). The distinction drives the semantics
//! of [`crate::TemporalStore::assert_at`] and
//! [`crate::TemporalStore::replace_at`].

use crate::fact::AttrId;
use fenestra_base::time::Duration;
use std::collections::HashMap;

/// How many values an attribute may hold simultaneously for one entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cardinality {
    /// At most one open value per entity at any instant. Asserting a
    /// different value while one is open is rejected; use `replace_at`.
    One,
    /// Any number of simultaneously valid values (the default).
    #[default]
    Many,
}

/// Declared properties of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttrSchema {
    /// Cardinality constraint enforced on writes.
    pub cardinality: Cardinality,
    /// Whether closed facts are retained for historical queries. When
    /// `false`, [`crate::TemporalStore::gc`] may reclaim them eagerly.
    pub keep_history: bool,
    /// Time-to-live: open facts expire (their validity closes at
    /// `start + ttl`) once the clock passes that instant — idle-timeout
    /// semantics for state that is only valid while fresh.
    ///
    /// Note that `replace` with an *unchanged* value is idempotent and
    /// keeps the original validity start, so it does not refresh the
    /// TTL. To build a keep-alive, store a changing value (e.g. the
    /// last-seen timestamp): every refresh then closes the old interval
    /// and restarts the clock.
    pub ttl: Option<Duration>,
}

impl AttrSchema {
    /// Cardinality-one, history kept.
    pub fn one() -> AttrSchema {
        AttrSchema {
            cardinality: Cardinality::One,
            keep_history: true,
            ttl: None,
        }
    }

    /// Cardinality-many, history kept.
    pub fn many() -> AttrSchema {
        AttrSchema {
            cardinality: Cardinality::Many,
            keep_history: true,
            ttl: None,
        }
    }

    /// Disable history retention (facts disappear from historical
    /// queries once GC'd past them).
    pub fn ephemeral(mut self) -> AttrSchema {
        self.keep_history = false;
        self
    }

    /// Expire open facts `ttl` after their validity starts (chainable).
    pub fn with_ttl(mut self, ttl: Duration) -> AttrSchema {
        self.ttl = Some(ttl);
        self
    }
}

/// The set of declared attributes. Undeclared attributes behave as
/// [`AttrSchema::many`].
#[derive(Debug, Clone, Default)]
pub struct Schema {
    attrs: HashMap<AttrId, AttrSchema>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declare (or redeclare) an attribute.
    pub fn declare(&mut self, attr: impl Into<AttrId>, schema: AttrSchema) {
        self.attrs.insert(attr.into(), schema);
    }

    /// The schema for `attr` (defaults for undeclared attributes).
    pub fn of(&self, attr: AttrId) -> AttrSchema {
        self.attrs.get(&attr).copied().unwrap_or(AttrSchema {
            cardinality: Cardinality::Many,
            keep_history: true,
            ttl: None,
        })
    }

    /// Iterate declared attributes.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, AttrSchema)> + '_ {
        self.attrs.iter().map(|(a, s)| (*a, *s))
    }

    /// Number of declared attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether no attribute has been declared.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::symbol::Symbol;

    #[test]
    fn defaults_to_many_with_history() {
        let s = Schema::new();
        let a = s.of(Symbol::intern("undeclared"));
        assert_eq!(a.cardinality, Cardinality::Many);
        assert!(a.keep_history);
    }

    #[test]
    fn declare_and_redeclare() {
        let mut s = Schema::new();
        s.declare("room", AttrSchema::one());
        assert_eq!(s.of(Symbol::intern("room")).cardinality, Cardinality::One);
        s.declare("room", AttrSchema::many());
        assert_eq!(s.of(Symbol::intern("room")).cardinality, Cardinality::Many);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ephemeral_flag() {
        let a = AttrSchema::one().ephemeral();
        assert!(!a.keep_history);
        assert_eq!(a.cardinality, Cardinality::One);
    }

    #[test]
    fn ttl_flag() {
        let a = AttrSchema::one().with_ttl(Duration::secs(30));
        assert_eq!(a.ttl, Some(Duration::secs(30)));
        assert_eq!(AttrSchema::one().ttl, None);
    }
}
