//! The on-disk write-ahead log.
//!
//! [`crate::wal`] defines the op vocabulary and its binary codec; this
//! module puts those bytes on disk durably. A log file is a sequence of
//! *frames*, one per appended batch:
//!
//! ```text
//! [len: u32 BE] [crc32: u32 BE] [payload: len bytes]
//! ```
//!
//! where the payload is [`WalCodec::encode`] output and the checksum is
//! CRC-32 (IEEE) over the payload. Frames make the log self-delimiting
//! and let recovery distinguish a *torn tail* (the crash interrupted
//! the final write) from wholesale corruption: reading stops at the
//! first frame whose length or checksum does not hold, everything
//! before it is trusted, everything after it is counted and discarded.
//!
//! ## Segments and rotation
//!
//! Log files are *generation-numbered segments*: `base.0`, `base.1`, …
//! ([`segment_path`]). A snapshot records the generation whose segment
//! continues it, so the recovery invariant is
//!
//! > snapshot(gen *g*) + replay of `base.g` = the live store.
//!
//! Rotation (performed by the server after a successful snapshot)
//! creates the next segment, writes the snapshot naming it, and only
//! then deletes the old segment — every crash window in between leaves
//! a recoverable pair on disk.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput: `Always` syncs
//! every appended batch (an acked-and-applied event survives kill -9),
//! `EveryN` amortizes the sync over n batches, `OnSnapshot` leaves
//! syncing to checkpoints entirely.

use crate::persist;
use crate::store::TemporalStore;
use crate::wal::{WalCodec, WalOp};
use fenestra_base::error::{Error, Result};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::thread;

/// Frame header size: u32 length + u32 checksum.
const FRAME_HEADER: usize = 8;

// ----- CRC-32 (IEEE) --------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----- fsync policy ---------------------------------------------------------

/// When the log writer calls `fsync` after appending a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every appended batch: an acked-and-applied event
    /// survives an ungraceful kill. The durable default.
    Always,
    /// Sync once every `n` appended batches (and at every checkpoint).
    /// At most `n - 1` batches are exposed to an ungraceful kill.
    EveryN(u32),
    /// Sync only at checkpoints (snapshot / shutdown). Highest
    /// throughput, weakest guarantee.
    OnSnapshot,
}

impl FromStr for FsyncPolicy {
    type Err = Error;

    fn from_str(s: &str) -> Result<FsyncPolicy> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "on-snapshot" => Ok(FsyncPolicy::OnSnapshot),
            _ => {
                if let Some(n) = s.strip_prefix("every-") {
                    let n: u32 = n.parse().map_err(|_| {
                        Error::Invalid(format!("bad fsync policy `{s}` (want every-<n>)"))
                    })?;
                    if n == 0 {
                        return Err(Error::Invalid("every-0 is not a policy; use always".into()));
                    }
                    Ok(FsyncPolicy::EveryN(n))
                } else {
                    Err(Error::Invalid(format!(
                        "unknown fsync policy `{s}` (always | every-<n> | on-snapshot)"
                    )))
                }
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::OnSnapshot => write!(f, "on-snapshot"),
        }
    }
}

// ----- paths ----------------------------------------------------------------

/// The path of generation `gen` of the log at `base`: `base.<gen>`.
/// This is the single-shard (legacy) layout; a sharded deployment uses
/// [`shard_segment_path`] instead.
pub fn segment_path(base: &Path, gen: u64) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".{gen}"));
    PathBuf::from(os)
}

/// The path of shard `shard`, generation `gen` of the sharded log at
/// `base`: `base-<shard>-<gen>.seg`. Shard-addressed segments let each
/// partition group-commit, fsync, and truncate its torn tail
/// independently.
pub fn shard_segment_path(base: &Path, shard: u32, gen: u64) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!("-{shard}-{gen}.seg"));
    PathBuf::from(os)
}

/// The per-shard snapshot path for the snapshot configured at `path`:
/// `path.shard<shard>`. A single-shard deployment writes `path` itself.
pub fn shard_snapshot_path(path: &Path, shard: u32) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".shard{shard}"));
    PathBuf::from(os)
}

// ----- reading --------------------------------------------------------------

/// Result of scanning a log file.
#[derive(Debug, Default)]
pub struct LogTail {
    /// Ops decoded from the valid frame prefix, in append order.
    pub ops: Vec<WalOp>,
    /// Number of valid frames.
    pub frames: u64,
    /// Byte length of the valid frame prefix.
    pub valid_len: u64,
    /// Bytes after the last valid frame (torn or corrupt), discarded.
    pub discarded_bytes: u64,
}

/// Scan the byte image of a log file, stopping at the first torn or
/// corrupt frame. Never fails: damage is reported, not raised.
pub fn scan_frames(data: &[u8]) -> LogTail {
    let mut tail = LogTail::default();
    let mut pos = 0usize;
    while data.len() - pos >= FRAME_HEADER {
        let len = u32::from_be_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let Some(end) = pos
            .checked_add(FRAME_HEADER)
            .and_then(|p| p.checked_add(len))
        else {
            break;
        };
        if end > data.len() {
            break; // torn: the final frame's payload never fully landed
        }
        let crc = u32::from_be_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &data[pos + FRAME_HEADER..end];
        if crc32(payload) != crc {
            break;
        }
        let Ok(mut ops) = WalCodec::decode(payload) else {
            break;
        };
        tail.ops.append(&mut ops);
        tail.frames += 1;
        pos = end;
    }
    tail.valid_len = pos as u64;
    tail.discarded_bytes = (data.len() - pos) as u64;
    tail
}

/// Read and scan the log file at `path`. A missing file is an empty
/// log; an unreadable file is an error.
pub fn read_log(path: &Path) -> Result<LogTail> {
    match fs::read(path) {
        Ok(data) => Ok(scan_frames(&data)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LogTail::default()),
        Err(e) => Err(Error::from(e)),
    }
}

// ----- writing --------------------------------------------------------------

/// Cumulative writer counters (monotone across the writer's lifetime).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalWriterStats {
    /// Frames appended.
    pub appends: u64,
    /// Bytes appended (headers included).
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
}

/// Appends CRC-framed op batches to one log segment.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Batches appended since the last sync (drives `EveryN`).
    unsynced_batches: u32,
    dirty: bool,
    stats: WalWriterStats,
    /// Bytes in the segment (valid prefix at open, grows per frame).
    len: u64,
    /// Optional write-path timing: append/fsync latency histograms.
    /// The writer is the only place that knows whether an `append`
    /// also synced, so the split is measured here.
    obs: Option<std::sync::Arc<fenestra_obs::WalObs>>,
}

impl WalWriter {
    /// Open (or create) the segment at `path` for appending. An
    /// existing file is scanned and **truncated to its valid frame
    /// prefix** first — appending after torn bytes would make every
    /// later frame unreachable to recovery. Returns the writer and the
    /// number of torn bytes removed.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<(WalWriter, u64)> {
        let tail = read_log(path)?;
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        file.set_len(tail.valid_len)?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced_batches: 0,
            dirty: false,
            stats: WalWriterStats::default(),
            len: tail.valid_len,
            obs: None,
        };
        w.file.seek(SeekFrom::End(0))?;
        if tail.discarded_bytes > 0 {
            // The truncation itself must be durable before new frames
            // land after it.
            w.file.sync_all()?;
            w.stats.fsyncs += 1;
        }
        Ok((w, tail.discarded_bytes))
    }

    /// Create the segment at `path` empty, discarding any previous
    /// content (rotation writes each generation from scratch).
    pub fn create(path: &Path, policy: FsyncPolicy) -> Result<WalWriter> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced_batches: 0,
            dirty: false,
            stats: WalWriterStats::default(),
            len: 0,
            obs: None,
        })
    }

    /// Attach append/fsync latency histograms. Survives until the
    /// writer is dropped; rotation must re-attach on the new segment's
    /// writer to keep one continuous series.
    pub fn set_obs(&mut self, obs: std::sync::Arc<fenestra_obs::WalObs>) {
        self.obs = Some(obs);
    }

    /// Append one batch of ops as a single frame, then sync according
    /// to the policy. Returns the number of bytes appended. An empty
    /// batch appends nothing.
    pub fn append(&mut self, ops: &[WalOp]) -> Result<u64> {
        if ops.is_empty() {
            return Ok(0);
        }
        let payload = WalCodec::encode(ops);
        if payload.len() > u32::MAX as usize {
            return Err(Error::Invalid(format!(
                "WAL batch of {} bytes exceeds the 4 GiB frame limit",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        let started = self.obs.is_some().then(std::time::Instant::now);
        self.file.write_all(&frame)?;
        if let (Some(obs), Some(t0)) = (&self.obs, started) {
            obs.append_us.record(t0.elapsed().as_micros() as u64);
        }
        self.dirty = true;
        self.unsynced_batches += 1;
        self.stats.appends += 1;
        self.stats.bytes += frame.len() as u64;
        self.len += frame.len() as u64;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced_batches >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnSnapshot => {}
        }
        Ok(frame.len() as u64)
    }

    /// Force appended frames to stable storage (no-op when clean).
    pub fn sync(&mut self) -> Result<()> {
        if self.dirty {
            let started = self.obs.is_some().then(std::time::Instant::now);
            self.file.sync_data()?;
            if let (Some(obs), Some(t0)) = (&self.obs, started) {
                obs.fsync_us.record(t0.elapsed().as_micros() as u64);
            }
            self.stats.fsyncs += 1;
            self.dirty = false;
            self.unsynced_batches = 0;
        }
        Ok(())
    }

    /// Writer counters.
    pub fn stats(&self) -> WalWriterStats {
        self.stats
    }

    /// The segment path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently in the segment (valid-prefix length at open
    /// plus every frame appended since). Tracked without a stat call.
    pub fn segment_len(&self) -> u64 {
        self.len
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Append pre-framed bytes verbatim — a run of complete
    /// `[len][crc][payload]` frames, e.g. shipped from a replication
    /// leader. The run is validated end-to-end first (every byte must
    /// belong to a CRC-valid frame); damaged input is refused without
    /// writing anything. Returns the decoded tail so the caller can
    /// apply the contained ops without scanning twice. Each contained
    /// frame counts as one append in the writer stats — a follower's
    /// counters mirror the leader's — and the fsync policy treats each
    /// as one batch.
    pub fn append_raw(&mut self, frames: &[u8]) -> Result<LogTail> {
        if frames.is_empty() {
            return Ok(LogTail::default());
        }
        let tail = scan_frames(frames);
        if tail.discarded_bytes > 0 {
            return Err(Error::Corrupt(format!(
                "raw append refused: {} of {} bytes are not valid frames",
                tail.discarded_bytes,
                frames.len()
            )));
        }
        let started = self.obs.is_some().then(std::time::Instant::now);
        self.file.write_all(frames)?;
        if let (Some(obs), Some(t0)) = (&self.obs, started) {
            obs.append_us.record(t0.elapsed().as_micros() as u64);
        }
        self.dirty = true;
        self.unsynced_batches = self
            .unsynced_batches
            .saturating_add(tail.frames.min(u32::MAX as u64) as u32);
        self.stats.appends += tail.frames;
        self.stats.bytes += frames.len() as u64;
        self.len += frames.len() as u64;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced_batches >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnSnapshot => {}
        }
        Ok(tail)
    }
}

// ----- segment reading (replication shipping + inventory) -------------------

/// Incrementally reads complete, CRC-valid frames out of one segment
/// file from a byte offset — the replication leader's shipping read
/// path. A torn or still-growing tail is not an error: those bytes are
/// simply not returned until the writer completes the frame (a
/// partially flushed frame fails the length or CRC check and is
/// re-read whole on a later call). Because the reader holds the file
/// open, it can finish draining a segment even after rotation unlinks
/// it (POSIX open-handle semantics).
pub struct SegmentReader {
    file: File,
    offset: u64,
}

impl SegmentReader {
    /// Open `path` positioned at `offset` (bytes of complete frames
    /// already consumed by a previous reader). The file must exist.
    pub fn open(path: &Path, offset: u64) -> Result<SegmentReader> {
        Ok(SegmentReader {
            file: File::open(path)?,
            offset,
        })
    }

    /// Bytes of complete frames consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read the next run of complete frames, up to roughly
    /// `max_bytes`, and advance past them. Returns the raw frame bytes
    /// — empty when nothing new has fully landed yet. A single frame
    /// larger than `max_bytes` is returned whole rather than starving.
    pub fn read_frames(&mut self, max_bytes: usize) -> Result<Vec<u8>> {
        let mut buf = self.read_at(self.offset, max_bytes.max(FRAME_HEADER))?;
        let mut tail = scan_frames(&buf);
        if tail.valid_len == 0 && buf.len() >= FRAME_HEADER {
            // Possibly one frame bigger than the chunk: read its
            // declared length and rescan once. (If the frame is torn
            // or corrupt instead, the rescan still yields nothing.)
            let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
            if let Some(whole) = FRAME_HEADER.checked_add(len).filter(|&w| w > buf.len()) {
                buf = self.read_at(self.offset, whole)?;
                tail = scan_frames(&buf);
            }
        }
        buf.truncate(tail.valid_len as usize);
        self.offset += tail.valid_len;
        Ok(buf)
    }

    fn read_at(&mut self, offset: u64, cap: usize) -> Result<Vec<u8>> {
        use std::io::Read;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; cap];
        let mut filled = 0;
        while filled < buf.len() {
            match self.file.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::from(e)),
            }
        }
        buf.truncate(filled);
        Ok(buf)
    }
}

/// Replay a run of segment files in generation order — e.g. the
/// segments a follower accumulated before its snapshot caught up. Torn
/// or garbage tail bytes are tolerated only in the **last** segment
/// (the only one that can have been mid-write at a crash); discarded
/// bytes in any earlier segment mean mid-stream corruption — every
/// frame after the damage would be silently unreachable — and are
/// refused with [`Error::Corrupt`].
pub fn read_segments(paths: &[PathBuf]) -> Result<LogTail> {
    let mut all = LogTail::default();
    for (i, path) in paths.iter().enumerate() {
        let mut tail = read_log(path)?;
        if tail.discarded_bytes > 0 && i + 1 != paths.len() {
            return Err(Error::Corrupt(format!(
                "segment {} carries {} damaged bytes mid-stream ({} frames readable); \
                 only the newest segment may have a torn tail",
                path.display(),
                tail.discarded_bytes,
                tail.frames
            )));
        }
        all.ops.append(&mut tail.ops);
        all.frames += tail.frames;
        all.valid_len += tail.valid_len;
        all.discarded_bytes += tail.discarded_bytes;
    }
    Ok(all)
}

/// The on-disk segment generations for the log at `base`, sorted
/// ascending: shard-addressed names (`base-<shard>-<gen>.seg`, see
/// [`shard_segment_path`]) when `shard` is `Some`, legacy names
/// (`base.<gen>`, see [`segment_path`]) otherwise. A missing directory
/// lists as empty — the log simply has no segments yet. Steady state
/// is one generation per shard (rotation deletes the old segment once
/// the covering snapshot commits); more than one means a rotation is
/// in flight or a past delete failed.
pub fn list_segment_gens(base: &Path, shard: Option<u32>) -> Vec<u64> {
    let dir = match base.parent().filter(|d| !d.as_os_str().is_empty()) {
        Some(d) => d,
        None => Path::new("."),
    };
    let Some(stem) = base.file_name().and_then(|s| s.to_str()) else {
        return Vec::new();
    };
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut gens: Vec<u64> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let gen = match shard {
            Some(s) => name
                .strip_prefix(stem)
                .and_then(|r| r.strip_prefix(&format!("-{s}-")))
                .and_then(|r| r.strip_suffix(".seg"))
                .and_then(|g| g.parse().ok()),
            None => name
                .strip_prefix(stem)
                .and_then(|r| r.strip_prefix('.'))
                .and_then(|g| g.parse().ok()),
        };
        if let Some(g) = gen {
            gens.push(g);
        }
    }
    gens.sort_unstable();
    gens
}

// ----- recovery -------------------------------------------------------------

/// What [`recover`] reconstructed.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered store. Its in-memory journal is **empty**: every
    /// replayed op is already durable, so draining it to the log again
    /// would double-apply on the next recovery.
    pub store: TemporalStore,
    /// The WAL generation the store continues (append to
    /// `segment_path(base, wal_gen)`).
    pub wal_gen: u64,
    /// Ops replayed from the snapshot.
    pub snapshot_ops: u64,
    /// Ops replayed from the WAL tail.
    pub wal_ops: u64,
    /// Torn/corrupt bytes discarded from the WAL tail.
    pub discarded_bytes: u64,
    /// Ops decoded from valid frames but discarded because they no
    /// longer applied cleanly (replay stops at the first such op).
    pub discarded_ops: u64,
    /// Replication fencing epoch stamped into the snapshot (0 when the
    /// snapshot predates replication or there was no snapshot).
    pub epoch: u64,
}

impl Recovery {
    /// Whether anything at all was replayed or discarded — i.e. the
    /// process is a restart over prior state rather than a first boot.
    pub fn resumed(&self) -> bool {
        self.snapshot_ops > 0 || self.wal_ops > 0 || self.discarded_bytes > 0
    }
}

/// Rebuild a store from the latest snapshot plus the WAL tail.
///
/// * A missing snapshot file yields a fresh store at generation 0; a
///   *corrupt* snapshot is an error (recovery must not silently start
///   empty over damaged state).
/// * A missing WAL segment is an empty tail. A torn or corrupt tail is
///   tolerated: replay stops at the damage and reports the discarded
///   byte count; it never panics and never fails the recovery.
pub fn recover(snapshot: Option<&Path>, wal_base: Option<&Path>) -> Result<Recovery> {
    recover_one(snapshot, wal_base, None)
}

/// One shard's recovery: like [`recover`] but with an optional
/// expected `(shard, shards)` identity validated against the snapshot
/// header (a snapshot written by a different shard, or by a deployment
/// with a different shard count, is an error — replaying it would
/// silently corrupt the partitioning).
fn recover_one(
    snapshot: Option<&Path>,
    wal_base: Option<&Path>,
    expect: Option<(u32, u32)>,
) -> Result<Recovery> {
    let (mut store, wal_gen, snapshot_ops, epoch) = match snapshot {
        Some(p) if p.exists() => {
            let loaded = persist::load_with_meta(p)?;
            if let Some((shard, shards)) = expect {
                let (got_shard, got_count) = (
                    loaded.shard.unwrap_or(shard),
                    loaded.shard_count.unwrap_or(shards),
                );
                if got_shard != shard || got_count != shards {
                    return Err(Error::Invalid(format!(
                        "snapshot {} belongs to shard {got_shard} of {got_count}, \
                         expected shard {shard} of {shards}; refusing to replay \
                         mixed shard state",
                        p.display()
                    )));
                }
            }
            (loaded.store, loaded.wal_gen, loaded.op_count, loaded.epoch)
        }
        _ => (TemporalStore::new(), 0, 0, 0),
    };
    let mut wal_ops = 0u64;
    let mut discarded_bytes = 0u64;
    let mut discarded_ops = 0u64;
    if let Some(base) = wal_base {
        let seg = match expect {
            Some((shard, _)) => shard_segment_path(base, shard, wal_gen),
            None => segment_path(base, wal_gen),
        };
        let tail = read_log(&seg)?;
        discarded_bytes = tail.discarded_bytes;
        for (i, op) in tail.ops.iter().enumerate() {
            if store.apply(op).is_err() {
                // An op that replayed cleanly when journaled but not
                // now means the log diverged from the snapshot (e.g.
                // operator error mixing state directories). Keep the
                // consistent prefix.
                discarded_ops = (tail.ops.len() - i) as u64;
                break;
            }
            wal_ops += 1;
        }
    }
    // Replayed ops are already on disk; journaling them again would
    // duplicate them in the segment.
    store.take_journal();
    Ok(Recovery {
        store,
        wal_gen,
        snapshot_ops,
        wal_ops,
        discarded_bytes,
        discarded_ops,
        epoch,
    })
}

/// What a state directory's file names say about the deployment that
/// wrote them.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DiskLayout {
    /// Single-shard files present (`snapshot`, `base.<gen>`).
    pub legacy: bool,
    /// Highest shard index seen in shard-addressed files, plus one
    /// (`base-<s>-<g>.seg`, `snapshot.shard<s>`). `None` when no
    /// shard-addressed file exists. A lower bound on the writing
    /// deployment's shard count: high shards that never took a write
    /// leave no files, so equality with `--shards` is not required —
    /// only that no file names a shard *beyond* it.
    pub min_shards: Option<u32>,
}

/// Inspect the file names of an existing state directory to determine
/// which layout (single-shard or shard-addressed) wrote it. Used by
/// [`recover_shards`] to reject a restart whose `--shards` contradicts
/// the on-disk state instead of corrupting it.
pub fn detect_layout(snapshot: Option<&Path>, wal_base: Option<&Path>) -> Result<DiskLayout> {
    let mut layout = DiskLayout::default();
    let mut note_shard = |s: u32| {
        layout.min_shards = Some(layout.min_shards.unwrap_or(0).max(s + 1));
    };
    if let Some(snap) = snapshot {
        if snap.is_file() {
            layout.legacy = true;
        }
        let prefix = format!("{}.shard", file_name_of(snap)?);
        for name in dir_file_names(snap)? {
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Ok(s) = rest.parse::<u32>() {
                    note_shard(s);
                }
            }
        }
    }
    if let Some(base) = wal_base {
        let base_name = file_name_of(base)?;
        for name in dir_file_names(base)? {
            let Some(rest) = name.strip_prefix(&base_name) else {
                continue;
            };
            // Legacy segment: `<base>.<gen>`.
            if let Some(gen) = rest.strip_prefix('.') {
                if gen.parse::<u64>().is_ok() {
                    layout.legacy = true;
                }
            }
            // Shard segment: `<base>-<shard>-<gen>.seg`.
            if let Some(mid) = rest.strip_prefix('-').and_then(|r| r.strip_suffix(".seg")) {
                if let Some((s, g)) = mid.split_once('-') {
                    if let (Ok(s), Ok(_)) = (s.parse::<u32>(), g.parse::<u64>()) {
                        note_shard(s);
                    }
                }
            }
        }
    }
    Ok(layout)
}

fn file_name_of(path: &Path) -> Result<String> {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or_else(|| Error::Invalid(format!("bad state path {}", path.display())))
}

fn dir_file_names(path: &Path) -> Result<Vec<String>> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    match fs::read_dir(dir) {
        Ok(entries) => Ok(entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(Error::from(e)),
    }
}

/// Rebuild all `shards` partitions of a sharded deployment, replaying
/// the shards **in parallel** (recovery time is the slowest shard, not
/// the sum). Element `s` of the result is shard `s`, recovered from
/// `shard_snapshot_path(snapshot, s)` + `shard_segment_path(base, s,
/// gen)` — or, when `shards == 1`, from the single-shard layout
/// ([`recover`]), which keeps a one-shard deployment byte-compatible
/// with the pre-sharding format.
///
/// A restart whose `shards` contradicts the on-disk layout (legacy
/// files under `shards > 1`, shard-addressed files under `shards ==
/// 1`, or files naming a shard `>= shards`) fails with a clear error
/// instead of quietly replaying a wrong partitioning.
pub fn recover_shards(
    snapshot: Option<&Path>,
    wal_base: Option<&Path>,
    shards: u32,
) -> Result<Vec<Recovery>> {
    if shards == 0 {
        return Err(Error::Invalid("shard count must be at least 1".into()));
    }
    let layout = detect_layout(snapshot, wal_base)?;
    if shards == 1 {
        if let Some(n) = layout.min_shards {
            return Err(Error::Invalid(format!(
                "state directory holds shard-addressed files from a deployment of \
                 at least {n} shards; restart with --shards {n} (or more) instead \
                 of --shards 1"
            )));
        }
        return Ok(vec![recover(snapshot, wal_base)?]);
    }
    if layout.legacy {
        return Err(Error::Invalid(format!(
            "state directory holds single-shard files (snapshot or base.<gen> \
             segments); restart with --shards 1, or move them aside before \
             sharding to {shards}"
        )));
    }
    if let Some(n) = layout.min_shards {
        if n > shards {
            return Err(Error::Invalid(format!(
                "state directory holds files for at least {n} shards but this \
                 process was started with --shards {shards}; shard counts must \
                 match the files on disk"
            )));
        }
    }
    thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                let snap = snapshot.map(|p| shard_snapshot_path(p, s));
                scope.spawn(move || recover_one(snap.as_deref(), wal_base, Some((s, shards))))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(Error::Invalid("shard recovery panicked".into())))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrSchema;
    use fenestra_base::time::Timestamp;
    use fenestra_base::value::Value;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fenestra-wal-file-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}", std::process::id()));
        fs::remove_file(&p).ok();
        p
    }

    fn sample_ops(n: u64) -> Vec<WalOp> {
        (0..n)
            .map(|i| WalOp::Assert {
                entity: fenestra_base::value::EntityId(i),
                attr: fenestra_base::symbol::Symbol::intern("x"),
                value: Value::Int(i as i64),
                t: Timestamp::new(i),
                provenance: crate::fact::Provenance::External,
            })
            .collect()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_read_round_trip() {
        let p = tmp("round-trip.wal");
        let ops = sample_ops(5);
        {
            let (mut w, torn) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
            assert_eq!(torn, 0);
            w.append(&ops[..2]).unwrap();
            w.append(&ops[2..]).unwrap();
            assert_eq!(w.stats().appends, 2);
            assert!(w.stats().fsyncs >= 2, "always policy syncs per batch");
        }
        let tail = read_log(&p).unwrap();
        assert_eq!(tail.ops, ops);
        assert_eq!(tail.frames, 2);
        assert_eq!(tail.discarded_bytes, 0);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_empty_log() {
        let tail = read_log(Path::new("/nonexistent/fenestra.wal")).unwrap();
        assert_eq!(tail.frames, 0);
        assert!(tail.ops.is_empty());
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let p = tmp("torn.wal");
        let ops = sample_ops(6);
        {
            let (mut w, _) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
            w.append(&ops[..3]).unwrap();
            w.append(&ops[3..]).unwrap();
        }
        let full = fs::metadata(&p).unwrap().len();
        // Tear the final frame mid-payload.
        let file = OpenOptions::new().write(true).open(&p).unwrap();
        file.set_len(full - 5).unwrap();
        drop(file);
        let tail = read_log(&p).unwrap();
        assert_eq!(tail.ops, ops[..3], "first frame survives");
        assert_eq!(tail.frames, 1);
        assert!(tail.discarded_bytes > 0);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_crc_stops_scan_without_panic() {
        let p = tmp("crc.wal");
        let ops = sample_ops(4);
        {
            let (mut w, _) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
            w.append(&ops[..2]).unwrap();
            w.append(&ops[2..]).unwrap();
        }
        // Flip a byte inside the second frame's payload.
        let mut data = fs::read(&p).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        fs::write(&p, &data).unwrap();
        let tail = read_log(&p).unwrap();
        assert_eq!(tail.ops, ops[..2]);
        assert!(tail.discarded_bytes > 0);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn open_truncates_torn_tail_so_appends_stay_reachable() {
        let p = tmp("reopen.wal");
        let ops = sample_ops(4);
        {
            let (mut w, _) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
            w.append(&ops[..2]).unwrap();
        }
        // Simulate a torn append: garbage after the valid frame.
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(&[0xAB; 7]).unwrap();
        drop(f);
        let (mut w, torn) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
        assert_eq!(torn, 7);
        w.append(&ops[2..]).unwrap();
        drop(w);
        let tail = read_log(&p).unwrap();
        assert_eq!(tail.ops, ops, "post-truncation appends are readable");
        assert_eq!(tail.discarded_bytes, 0);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn every_n_policy_amortizes_syncs() {
        let p = tmp("every-n.wal");
        let ops = sample_ops(1);
        let (mut w, _) = WalWriter::open(&p, FsyncPolicy::EveryN(3)).unwrap();
        for _ in 0..7 {
            w.append(&ops).unwrap();
        }
        assert_eq!(w.stats().fsyncs, 2, "7 batches / every-3 = 2 syncs");
        w.sync().unwrap();
        assert_eq!(w.stats().fsyncs, 3);
        w.sync().unwrap();
        assert_eq!(w.stats().fsyncs, 3, "clean writer does not re-sync");
        drop(w);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!(
            "on-snapshot".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::OnSnapshot
        );
        assert_eq!(
            "every-64".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EveryN(64)
        );
        assert!("every-0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert!("every-x".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every-8");
    }

    #[test]
    fn segment_paths_are_generation_suffixed() {
        let base = PathBuf::from("/var/lib/fenestra/wal.log");
        assert_eq!(
            segment_path(&base, 0),
            PathBuf::from("/var/lib/fenestra/wal.log.0")
        );
        assert_eq!(
            segment_path(&base, 12),
            PathBuf::from("/var/lib/fenestra/wal.log.12")
        );
    }

    #[test]
    fn recover_without_files_is_a_fresh_store() {
        let base = tmp("fresh.wal");
        let snap = tmp("fresh.json");
        let r = recover(Some(&snap), Some(&base)).unwrap();
        assert_eq!(r.wal_gen, 0);
        assert!(!r.resumed());
        assert_eq!(r.store.open_fact_count(), 0);
    }

    #[test]
    fn recover_replays_wal_tail_and_clears_journal() {
        let base = tmp("replay.wal");
        let seg = segment_path(&base, 0);
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("v");
        s.replace_at(v, "room", "a", Timestamp::new(1)).unwrap();
        s.replace_at(v, "room", "b", Timestamp::new(5)).unwrap();
        {
            let (mut w, _) = WalWriter::open(&seg, FsyncPolicy::Always).unwrap();
            w.append(&s.take_journal()).unwrap();
        }
        let r = recover(None, Some(&base)).unwrap();
        assert!(r.resumed());
        assert_eq!(r.wal_ops, 4, "declare + entity + 2 replaces");
        assert_eq!(r.discarded_bytes, 0);
        let rv = r.store.lookup_entity("v").unwrap();
        assert_eq!(r.store.current().value(rv, "room"), Some(Value::str("b")));
        assert_eq!(r.store.history(rv, "room").len(), 2);
        assert_eq!(
            r.store.journal_len(),
            0,
            "recovered ops must not be re-journaled"
        );
        fs::remove_file(&seg).ok();
    }

    #[test]
    fn recover_snapshot_plus_tail() {
        let base = tmp("snap-tail.wal");
        let snap = tmp("snap-tail.json");
        let seg1 = segment_path(&base, 1);

        // Snapshot at generation 1, then more ops in segment 1.
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("v");
        s.replace_at(v, "room", "a", Timestamp::new(1)).unwrap();
        persist::save_compact(&s, &snap, 1).unwrap();
        s.take_journal();
        s.replace_at(v, "room", "b", Timestamp::new(9)).unwrap();
        {
            let (mut w, _) = WalWriter::open(&seg1, FsyncPolicy::Always).unwrap();
            w.append(&s.take_journal()).unwrap();
        }

        let r = recover(Some(&snap), Some(&base)).unwrap();
        assert_eq!(r.wal_gen, 1);
        assert!(r.snapshot_ops > 0 && r.wal_ops > 0);
        let rv = r.store.lookup_entity("v").unwrap();
        assert_eq!(r.store.current().value(rv, "room"), Some(Value::str("b")));
        assert_eq!(r.store.history(rv, "room").len(), 2);
        fs::remove_file(&snap).ok();
        fs::remove_file(&seg1).ok();
    }

    #[test]
    fn recover_rejects_corrupt_snapshot() {
        let snap = tmp("bad.json");
        fs::write(&snap, "{\"version\":1,\"ops\":[{\"truncat").unwrap();
        assert!(matches!(recover(Some(&snap), None), Err(Error::Corrupt(_))));
        fs::remove_file(&snap).ok();
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fenestra-wal-shard-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_paths_are_shard_and_generation_addressed() {
        let base = PathBuf::from("/var/lib/fenestra/wal");
        assert_eq!(
            shard_segment_path(&base, 3, 7),
            PathBuf::from("/var/lib/fenestra/wal-3-7.seg")
        );
        let snap = PathBuf::from("/var/lib/fenestra/state.json");
        assert_eq!(
            shard_snapshot_path(&snap, 2),
            PathBuf::from("/var/lib/fenestra/state.json.shard2")
        );
    }

    /// Write two shards' snapshots + WAL tails, recover them in
    /// parallel, and check each partition came back with its own data.
    #[test]
    fn recover_shards_replays_each_partition() {
        let dir = tmp_dir("replay");
        let base = dir.join("wal");
        let snap = dir.join("state.json");
        for s in 0..2u32 {
            let mut store = TemporalStore::new();
            store.declare_attr("room", AttrSchema::one());
            let v = store.named_entity(format!("v{s}").as_str());
            store
                .replace_at(v, "room", format!("r{s}").as_str(), Timestamp::new(1))
                .unwrap();
            persist::save_compact_sharded(&store, shard_snapshot_path(&snap, s), 0, s, 2).unwrap();
            store.take_journal();
            store
                .replace_at(v, "room", "hall", Timestamp::new(9))
                .unwrap();
            let (mut w, _) =
                WalWriter::open(&shard_segment_path(&base, s, 0), FsyncPolicy::Always).unwrap();
            w.append(&store.take_journal()).unwrap();
        }
        let recs = recover_shards(Some(&snap), Some(&base), 2).unwrap();
        assert_eq!(recs.len(), 2);
        for (s, r) in recs.iter().enumerate() {
            assert!(r.snapshot_ops > 0 && r.wal_ops > 0, "shard {s}");
            let v = r.store.lookup_entity(format!("v{s}").as_str()).unwrap();
            assert_eq!(r.store.current().value(v, "room"), Some(Value::str("hall")));
            assert!(
                r.store
                    .lookup_entity(format!("v{}", 1 - s).as_str())
                    .is_none(),
                "shard {s} must not hold the other shard's entity"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_shards_one_uses_the_legacy_layout() {
        let dir = tmp_dir("legacy");
        let base = dir.join("wal");
        let mut store = TemporalStore::new();
        store.declare_attr("room", AttrSchema::one());
        let v = store.named_entity("v");
        store.replace_at(v, "room", "a", Timestamp::new(1)).unwrap();
        {
            let (mut w, _) = WalWriter::open(&segment_path(&base, 0), FsyncPolicy::Always).unwrap();
            w.append(&store.take_journal()).unwrap();
        }
        let recs = recover_shards(None, Some(&base), 1).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].store.lookup_entity("v").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_shards_rejects_mismatched_layouts() {
        // Legacy files under --shards > 1.
        let dir = tmp_dir("mismatch");
        let base = dir.join("wal");
        fs::write(segment_path(&base, 0), b"").unwrap();
        let err = recover_shards(None, Some(&base), 4).unwrap_err();
        assert!(
            err.to_string().contains("--shards 1"),
            "unexpected error: {err}"
        );

        // Shard files under --shards 1.
        let dir2 = tmp_dir("mismatch2");
        let base2 = dir2.join("wal");
        fs::write(shard_segment_path(&base2, 3, 0), b"").unwrap();
        let err = recover_shards(None, Some(&base2), 1).unwrap_err();
        assert!(
            err.to_string().contains("--shards 4"),
            "unexpected error: {err}"
        );

        // Files naming a shard beyond the requested count.
        let err = recover_shards(None, Some(&base2), 2).unwrap_err();
        assert!(
            err.to_string().contains("at least 4 shards"),
            "unexpected error: {err}"
        );
        // A superset shard count is fine (high shards are just empty).
        assert_eq!(recover_shards(None, Some(&base2), 8).unwrap().len(), 8);

        // A snapshot whose header names another shard is rejected.
        let dir3 = tmp_dir("mismatch3");
        let snap3 = dir3.join("state.json");
        let store = TemporalStore::new();
        persist::save_compact_sharded(&store, shard_snapshot_path(&snap3, 0), 0, 1, 4).unwrap();
        let err = recover_shards(Some(&snap3), None, 4).unwrap_err();
        assert!(
            err.to_string().contains("belongs to shard 1"),
            "unexpected error: {err}"
        );
        for d in [dir, dir2, dir3] {
            let _ = fs::remove_dir_all(&d);
        }
    }
}

#[cfg(test)]
mod segment_reader_tests {
    use super::*;
    use fenestra_base::time::Timestamp;
    use fenestra_base::value::Value;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fenestra-segread-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops(range: std::ops::Range<u64>) -> Vec<WalOp> {
        range
            .map(|i| WalOp::Assert {
                entity: fenestra_base::value::EntityId(i),
                attr: fenestra_base::symbol::Symbol::intern("x"),
                value: Value::Int(i as i64),
                t: Timestamp::new(i),
                provenance: crate::fact::Provenance::External,
            })
            .collect()
    }

    /// The shipping read path: complete frames come out incrementally,
    /// a partial (still-being-written) tail frame is withheld until it
    /// completes, and an unlinked segment can still be drained through
    /// the open handle — the rotation-delete race the leader relies on.
    #[test]
    fn segment_reader_tails_incrementally_and_survives_unlink() {
        let dir = tmp_dir("tail");
        let p = dir.join("log.0");
        let ops = sample_ops(0..6);
        let (mut w, _) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
        w.append(&ops[..2]).unwrap();

        let mut r = SegmentReader::open(&p, 0).unwrap();
        let chunk = r.read_frames(1 << 20).unwrap();
        assert_eq!(scan_frames(&chunk).ops, ops[..2]);
        assert_eq!(r.offset(), w.segment_len());
        assert!(r.read_frames(1 << 20).unwrap().is_empty(), "caught up");

        // A torn tail (half a frame) yields nothing until completed.
        let full = {
            let payload = WalCodec::encode(&ops[2..4]);
            let mut f = Vec::new();
            f.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            f.extend_from_slice(&crc32(&payload).to_be_bytes());
            f.extend_from_slice(&payload);
            f
        };
        use std::io::Write as _;
        let mut raw = OpenOptions::new().append(true).open(&p).unwrap();
        raw.write_all(&full[..full.len() / 2]).unwrap();
        raw.flush().unwrap();
        assert!(
            r.read_frames(1 << 20).unwrap().is_empty(),
            "partial frame withheld"
        );
        raw.write_all(&full[full.len() / 2..]).unwrap();
        drop(raw);
        let chunk = r.read_frames(1 << 20).unwrap();
        assert_eq!(scan_frames(&chunk).ops, ops[2..4]);

        // A frame larger than the read chunk still comes out whole.
        let pos = r.offset();
        let mut w2 = {
            let (w2, _) = WalWriter::open(&p, FsyncPolicy::Always).unwrap();
            w2
        };
        w2.append(&ops[4..]).unwrap();
        let chunk = r.read_frames(1).unwrap();
        assert_eq!(scan_frames(&chunk).ops, ops[4..]);
        assert!(r.offset() > pos);

        // Unlink, then keep reading through the open handle.
        fs::remove_file(&p).unwrap();
        assert!(r.read_frames(1 << 20).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite: replay across a rotation boundary — two consecutive
    /// generations replay as one op stream in order.
    #[test]
    fn read_segments_replays_across_rotation_boundary() {
        let dir = tmp_dir("boundary");
        let base = dir.join("log");
        let ops = sample_ops(0..8);
        let mut w0 = WalWriter::create(&segment_path(&base, 0), FsyncPolicy::Always).unwrap();
        w0.append(&ops[..3]).unwrap();
        w0.append(&ops[3..5]).unwrap();
        let mut w1 = WalWriter::create(&segment_path(&base, 1), FsyncPolicy::Always).unwrap();
        w1.append(&ops[5..]).unwrap();

        let gens = list_segment_gens(&base, None);
        assert_eq!(gens, vec![0, 1]);
        let paths: Vec<PathBuf> = gens.iter().map(|&g| segment_path(&base, g)).collect();
        let tail = read_segments(&paths).unwrap();
        assert_eq!(tail.ops, ops);
        assert_eq!(tail.frames, 3);
        assert_eq!(tail.discarded_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite: a torn tail is tolerated in the newest segment only
    /// — the same bytes mid-run are refused outright.
    #[test]
    fn read_segments_tolerates_torn_tail_in_newest_segment_only() {
        let dir = tmp_dir("torn");
        let base = dir.join("log");
        let ops = sample_ops(0..4);
        for gen in [0u64, 1] {
            let mut w = WalWriter::create(&segment_path(&base, gen), FsyncPolicy::Always).unwrap();
            w.append(&ops[..2]).unwrap();
        }
        // Tear the newest segment: half a frame of garbage at the end.
        use std::io::Write as _;
        let newest = segment_path(&base, 1);
        let mut raw = OpenOptions::new().append(true).open(&newest).unwrap();
        raw.write_all(&[0xAB; 7]).unwrap();
        drop(raw);

        let paths = [segment_path(&base, 0), segment_path(&base, 1)];
        let tail = read_segments(&paths).unwrap();
        assert_eq!(tail.frames, 2);
        assert_eq!(tail.discarded_bytes, 7, "newest tail damage is reported");

        // The same damage in the *older* segment is mid-stream: refuse.
        let older = segment_path(&base, 0);
        let mut raw = OpenOptions::new().append(true).open(&older).unwrap();
        raw.write_all(&[0xAB; 7]).unwrap();
        drop(raw);
        let err = read_segments(&paths).unwrap_err();
        assert!(
            err.to_string().contains("mid-stream"),
            "refused with the mid-stream diagnosis: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite: a CRC-corrupt frame in the middle of an old segment
    /// (bit flip inside a committed frame, not a torn tail) is refused
    /// — everything after it would silently vanish otherwise.
    #[test]
    fn read_segments_refuses_crc_corrupt_midstream_frame() {
        let dir = tmp_dir("corrupt");
        let base = dir.join("log");
        let ops = sample_ops(0..6);
        let mut w0 = WalWriter::create(&segment_path(&base, 0), FsyncPolicy::Always).unwrap();
        w0.append(&ops[..2]).unwrap();
        let first_frame_len = w0.segment_len();
        w0.append(&ops[2..4]).unwrap();
        drop(w0);
        let mut w1 = WalWriter::create(&segment_path(&base, 1), FsyncPolicy::Always).unwrap();
        w1.append(&ops[4..]).unwrap();
        drop(w1);

        // Flip one payload byte inside the *first* frame of gen 0.
        let p0 = segment_path(&base, 0);
        let mut bytes = fs::read(&p0).unwrap();
        let victim = FRAME_HEADER + (first_frame_len as usize - FRAME_HEADER) / 2;
        bytes[victim] ^= 0x40;
        fs::write(&p0, &bytes).unwrap();

        let paths = [p0.clone(), segment_path(&base, 1)];
        let err = read_segments(&paths).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "refused: {err}");
        // And even alone, the scan never yields frames past the damage.
        let tail = read_log(&p0).unwrap();
        assert_eq!(tail.frames, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Raw (pre-framed) appends mirror the source byte-for-byte and
    /// refuse damaged input without writing.
    #[test]
    fn append_raw_mirrors_frames_and_refuses_damage() {
        let dir = tmp_dir("raw");
        let src = dir.join("leader.0");
        let dst = dir.join("follower.0");
        let ops = sample_ops(0..5);
        let mut w = WalWriter::create(&src, FsyncPolicy::Always).unwrap();
        w.append(&ops[..2]).unwrap();
        w.append(&ops[2..]).unwrap();
        drop(w);
        let bytes = fs::read(&src).unwrap();

        let mut f = WalWriter::create(&dst, FsyncPolicy::Always).unwrap();
        let tail = f.append_raw(&bytes).unwrap();
        assert_eq!(tail.ops, ops);
        assert_eq!(tail.frames, 2);
        assert_eq!(f.stats().appends, 2, "follower counters mirror the leader");
        assert_eq!(f.segment_len(), bytes.len() as u64);

        let mut damaged = bytes.clone();
        let last = damaged.len() - 1;
        damaged[last] ^= 0xFF;
        let err = f.append_raw(&damaged).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
        assert_eq!(
            fs::read(&dst).unwrap(),
            bytes,
            "refused input wrote nothing"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Inventory listing parses both naming layouts and ignores
    /// everything else in the directory.
    #[test]
    fn list_segment_gens_parses_both_layouts() {
        let dir = tmp_dir("list");
        let base = dir.join("log");
        for name in [
            "log.0",
            "log.3",
            "log-0-1.seg",
            "log-0-2.seg",
            "log-1-7.seg",
            "log.epoch",
            "state.json",
            "log-0-x.seg",
        ] {
            fs::write(dir.join(name), b"").unwrap();
        }
        assert_eq!(list_segment_gens(&base, None), vec![0, 3]);
        assert_eq!(list_segment_gens(&base, Some(0)), vec![1, 2]);
        assert_eq!(list_segment_gens(&base, Some(1)), vec![7]);
        assert!(list_segment_gens(&base, Some(2)).is_empty());
        assert!(list_segment_gens(&dir.join("missing/log"), None).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Epoch stamping round-trips through the compact snapshot header
    /// and the cheap meta peek; epoch 0 keeps the legacy byte shape.
    #[test]
    fn snapshot_epoch_stamping_round_trips() {
        let dir = tmp_dir("epoch");
        let p = dir.join("state.json");
        let store = TemporalStore::replay(&sample_ops(0..3)).unwrap();
        persist::save_compact_stamped(&store, &p, 4, Some((1, 2)), 9).unwrap();
        let meta = persist::peek_meta(&p).unwrap();
        assert_eq!(meta.wal_gen, 4);
        assert_eq!(meta.shard, Some(1));
        assert_eq!(meta.shard_count, Some(2));
        assert_eq!(meta.epoch, 9);
        let loaded = persist::load_with_meta(&p).unwrap();
        assert_eq!(loaded.epoch, 9);
        assert_eq!(loaded.wal_gen, 4);

        persist::save_compact_stamped(&store, &p, 4, Some((1, 2)), 0).unwrap();
        let json = fs::read_to_string(&p).unwrap();
        assert!(!json.contains("epoch"), "epoch 0 is not written: {json}");
        assert_eq!(persist::peek_meta(&p).unwrap().epoch, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
