//! Per-`(entity, attribute)` timelines.
//!
//! A timeline records, in validity-start order, every fact ever
//! asserted for one `(entity, attribute)` pair. As-of lookups binary
//! search the start positions and then scan the (usually tiny) run of
//! candidates whose intervals could contain the probe instant.

use crate::fact::FactId;
use fenestra_base::time::Timestamp;

/// One timeline entry: where a fact's validity starts, and which fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Validity start of the fact.
    pub start: Timestamp,
    /// The fact in the store arena.
    pub id: FactId,
}

/// Ordered record of all facts for one `(entity, attribute)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Entries sorted by `start` (ties broken by insertion order).
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Number of facts ever recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the timeline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a fact starting at `start`, keeping start order. Most
    /// insertions are appends (the engine feeds the store in event-time
    /// order), so we check the tail first.
    pub fn insert(&mut self, start: Timestamp, id: FactId) {
        let entry = TimelineEntry { start, id };
        match self.entries.last() {
            Some(last) if last.start <= start => self.entries.push(entry),
            _ => {
                // Out-of-order insert: place after all entries with
                // start <= new start to preserve insertion order among
                // equal starts.
                let pos = self.entries.partition_point(|e| e.start <= start);
                self.entries.insert(pos, entry);
            }
        }
    }

    /// Remove an entry by fact id (used by GC). Returns whether it was
    /// present.
    pub fn remove(&mut self, id: FactId) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// All entries, in start order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Iterate the fact ids whose validity *could* contain `t`: all
    /// entries with `start <= t`, newest first. The caller still
    /// checks `validity.contains(t)` against the arena (intervals may
    /// have closed before `t`). Newest-first means cardinality-one
    /// lookups usually test a single fact.
    pub fn candidates_at(&self, t: Timestamp) -> impl Iterator<Item = FactId> + '_ {
        let end = self.entries.partition_point(|e| e.start <= t);
        self.entries[..end].iter().rev().map(|e| e.id)
    }

    /// Iterate fact ids whose start lies in `[from, to)` plus all that
    /// started before `from` (and so could overlap the range).
    pub fn candidates_overlapping(&self, to: Timestamp) -> impl Iterator<Item = FactId> + '_ {
        let end = self.entries.partition_point(|e| e.start < to);
        self.entries[..end].iter().map(|e| e.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn append_in_order() {
        let mut tl = Timeline::new();
        tl.insert(ts(1), FactId(0));
        tl.insert(ts(5), FactId(1));
        tl.insert(ts(5), FactId(2));
        tl.insert(ts(9), FactId(3));
        let ids: Vec<u64> = tl.entries().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn out_of_order_insert_keeps_sorted() {
        let mut tl = Timeline::new();
        tl.insert(ts(10), FactId(0));
        tl.insert(ts(5), FactId(1));
        tl.insert(ts(7), FactId(2));
        let starts: Vec<u64> = tl.entries().iter().map(|e| e.start.0).collect();
        assert_eq!(starts, vec![5, 7, 10]);
    }

    #[test]
    fn candidates_at_is_newest_first_and_bounded() {
        let mut tl = Timeline::new();
        tl.insert(ts(1), FactId(0));
        tl.insert(ts(5), FactId(1));
        tl.insert(ts(9), FactId(2));
        let c: Vec<u64> = tl.candidates_at(ts(6)).map(|f| f.0).collect();
        assert_eq!(c, vec![1, 0], "newest first, excludes starts after t");
        let c: Vec<u64> = tl.candidates_at(ts(0)).map(|f| f.0).collect();
        assert!(c.is_empty());
        let c: Vec<u64> = tl.candidates_at(ts(9)).map(|f| f.0).collect();
        assert_eq!(c, vec![2, 1, 0], "start == t is included");
    }

    #[test]
    fn remove_by_id() {
        let mut tl = Timeline::new();
        tl.insert(ts(1), FactId(7));
        assert!(tl.remove(FactId(7)));
        assert!(!tl.remove(FactId(7)));
        assert!(tl.is_empty());
    }

    #[test]
    fn candidates_overlapping_excludes_later_starts() {
        let mut tl = Timeline::new();
        tl.insert(ts(1), FactId(0));
        tl.insert(ts(5), FactId(1));
        tl.insert(ts(9), FactId(2));
        let c: Vec<u64> = tl.candidates_overlapping(ts(9)).map(|f| f.0).collect();
        assert_eq!(c, vec![0, 1], "start >= `to` cannot overlap [from, to)");
    }
}
