//! Whole-store persistence.
//!
//! A store snapshot is serialized as JSON (human-inspectable — the
//! "queryable state" deliverable extends to files on disk) containing
//! the WAL; loading replays it. Since the WAL deterministically
//! reconstructs the store, this is both simple and exactly as
//! expressive as serializing the materialized indexes.
//!
//! The JSON shape is `{"version":1,"ops":[...]}` with one object per
//! [`WalOp`], discriminated by an `"op"` field. Values are tagged
//! single-key objects (`{"int":5}`, `{"str":"lobby"}`, …) so every
//! variant round-trips losslessly, floats included. Snapshots written
//! as part of a durable-log checkpoint additionally carry a
//! `"wal_gen"` field naming the log generation that continues them
//! (see [`crate::wal_file`]); readers that predate the field ignore
//! it, and [`load`] tolerates its absence.
//!
//! All file writes here are *atomic*: the bytes land in a temp file in
//! the target directory, are fsynced, and are renamed over the
//! destination — a crash mid-write can never destroy the previous good
//! snapshot.

use crate::fact::Provenance;
use crate::schema::{AttrSchema, Cardinality};
use crate::store::TemporalStore;
use crate::wal::{WalCodec, WalOp};
use fenestra_base::error::{Error, Result};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Duration, Timestamp};
use fenestra_base::value::{EntityId, Value};
use serde_json::{Map, Value as Json};
use std::fs;
use std::io::Write;
use std::path::Path;

const FORMAT_VERSION: u64 = 1;

/// Serialize a journal to the snapshot JSON string. `wal_gen` names
/// the log generation that continues this snapshot (pass 0 when no
/// durable log is in play; the field is always written so checkpoint
/// provenance is inspectable).
pub fn ops_to_json(ops: &[WalOp], wal_gen: u64) -> String {
    ops_to_json_inner(ops, wal_gen, None, 0)
}

/// [`ops_to_json`] for one shard of a sharded deployment: the header
/// additionally carries `"shard"` (this partition's index) and
/// `"shards"` (the deployment's shard count), so recovery can reject a
/// restart whose `--shards` does not match the files on disk.
pub fn ops_to_json_sharded(ops: &[WalOp], wal_gen: u64, shard: u32, shards: u32) -> String {
    ops_to_json_inner(ops, wal_gen, Some((shard, shards)), 0)
}

fn ops_to_json_inner(ops: &[WalOp], wal_gen: u64, shard: Option<(u32, u32)>, epoch: u64) -> String {
    let mut root = Map::new();
    root.insert("version".into(), Json::from(FORMAT_VERSION));
    root.insert("wal_gen".into(), Json::from(wal_gen));
    if let Some((shard, shards)) = shard {
        root.insert("shard".into(), Json::from(shard));
        root.insert("shards".into(), Json::from(shards));
    }
    if epoch > 0 {
        root.insert("epoch".into(), Json::from(epoch));
    }
    root.insert(
        "ops".into(),
        Json::Array(ops.iter().map(op_to_json).collect()),
    );
    Json::Object(root).to_string()
}

/// Serialize the store's journal to a JSON string.
pub fn to_json(store: &TemporalStore) -> Result<String> {
    let mut root = Map::new();
    root.insert("version".into(), Json::from(FORMAT_VERSION));
    root.insert(
        "ops".into(),
        Json::Array(store.wal().iter().map(op_to_json).collect()),
    );
    Ok(Json::Object(root).to_string())
}

/// A snapshot parsed together with its metadata.
pub struct LoadedSnapshot {
    /// The reconstructed store.
    pub store: TemporalStore,
    /// The WAL generation continuing this snapshot (0 when the
    /// snapshot predates the durable log or was written without one).
    pub wal_gen: u64,
    /// Number of ops replayed.
    pub op_count: u64,
    /// The shard this snapshot belongs to (`None` for single-shard /
    /// legacy snapshots, which carry no shard header).
    pub shard: Option<u32>,
    /// The shard count of the deployment that wrote the snapshot.
    pub shard_count: Option<u32>,
    /// The replication fencing epoch this snapshot was written under
    /// (0 when the snapshot predates replication or the deployment
    /// never promoted — epoch 0 is the unfenced default and is not
    /// written to the header).
    pub epoch: u64,
}

/// The header of a snapshot, without the replayed store: what a
/// replication leader needs to detect a committed rotation (the
/// snapshot's `wal_gen` is the commit point of segment rotation — the
/// new segment *file* may exist before the snapshot covering the old
/// one landed) and what promotion needs to learn the persisted epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// The WAL generation continuing this snapshot.
    pub wal_gen: u64,
    /// Shard id, when the snapshot is shard-stamped.
    pub shard: Option<u32>,
    /// Shard count, when the snapshot is shard-stamped.
    pub shard_count: Option<u32>,
    /// Replication fencing epoch (0 when absent).
    pub epoch: u64,
    /// Ops in the snapshot (counted, not replayed).
    pub op_count: u64,
}

/// Read only the metadata header of the snapshot at `path` — parses
/// the JSON but does not replay the ops into a store. A missing file
/// surfaces as the underlying I/O error (callers treating "no snapshot
/// yet" as benign should check existence or match on it).
pub fn peek_meta(path: impl AsRef<Path>) -> Result<SnapshotMeta> {
    let json = fs::read_to_string(path)?;
    meta_from_json(&json)
}

/// [`peek_meta`] over bytes already in hand — a replication leader
/// reads the snapshot file once and parses gen/epoch from the *same*
/// bytes it ships, so a concurrent checkpoint can't desynchronize the
/// label from the payload.
pub fn meta_from_json(json: &str) -> Result<SnapshotMeta> {
    let root: Json = serde_json::from_str(json).map_err(|e| Error::Corrupt(e.to_string()))?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt("snapshot missing version"))?;
    if version != FORMAT_VERSION {
        return Err(Error::Corrupt(format!(
            "snapshot version {version} unsupported (expected {FORMAT_VERSION})"
        )));
    }
    Ok(SnapshotMeta {
        wal_gen: root.get("wal_gen").and_then(Json::as_u64).unwrap_or(0),
        shard: root.get("shard").and_then(Json::as_u64).map(|s| s as u32),
        shard_count: root.get("shards").and_then(Json::as_u64).map(|s| s as u32),
        epoch: root.get("epoch").and_then(Json::as_u64).unwrap_or(0),
        op_count: root
            .get("ops")
            .and_then(Json::as_array)
            .map(|a| a.len() as u64)
            .unwrap_or(0),
    })
}

/// Rebuild a store from snapshot JSON, keeping the metadata.
pub fn from_json_with_meta(json: &str) -> Result<LoadedSnapshot> {
    let root: Json = serde_json::from_str(json).map_err(|e| Error::Corrupt(e.to_string()))?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt("snapshot missing version"))?;
    if version != FORMAT_VERSION {
        return Err(Error::Corrupt(format!(
            "snapshot version {version} unsupported (expected {FORMAT_VERSION})"
        )));
    }
    let wal_gen = root.get("wal_gen").and_then(Json::as_u64).unwrap_or(0);
    let shard = root.get("shard").and_then(Json::as_u64).map(|s| s as u32);
    let shard_count = root.get("shards").and_then(Json::as_u64).map(|s| s as u32);
    let ops = root
        .get("ops")
        .and_then(Json::as_array)
        .ok_or_else(|| corrupt("snapshot missing ops array"))?
        .iter()
        .map(op_from_json)
        .collect::<Result<Vec<WalOp>>>()?;
    Ok(LoadedSnapshot {
        store: TemporalStore::replay(&ops)?,
        wal_gen,
        op_count: ops.len() as u64,
        shard,
        shard_count,
        epoch: root.get("epoch").and_then(Json::as_u64).unwrap_or(0),
    })
}

/// Rebuild a store from [`to_json`] output.
pub fn from_json(json: &str) -> Result<TemporalStore> {
    from_json_with_meta(json).map(|l| l.store)
}

/// Write `bytes` to `path` atomically: temp file in the same
/// directory, fsync, rename. The previous file (if any) survives any
/// crash before the rename commits. Public because replication reuses
/// it for shipped snapshot copies and the epoch sidecar file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| Error::Invalid(format!("bad snapshot path {}", path.display())))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| -> Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
        return result;
    }
    // Make the rename itself durable. Not all platforms allow opening
    // a directory for sync; failing that is not fatal.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Write a JSON snapshot to `path` (atomically).
pub fn save(store: &TemporalStore, path: impl AsRef<Path>) -> Result<()> {
    write_atomic(path.as_ref(), to_json(store)?.as_bytes())
}

/// Write a *compact* JSON snapshot to `path` (atomically): the minimal
/// op sequence for the current state ([`TemporalStore::compact_ops`])
/// rather than the full journal, stamped with the WAL generation that
/// continues it. This is the checkpoint format of the durable log.
pub fn save_compact(store: &TemporalStore, path: impl AsRef<Path>, wal_gen: u64) -> Result<()> {
    write_atomic(
        path.as_ref(),
        ops_to_json(&store.compact_ops(), wal_gen).as_bytes(),
    )
}

/// [`save_compact`] for one shard of a sharded deployment: the
/// snapshot header carries the shard id and shard count (see
/// [`ops_to_json_sharded`]).
pub fn save_compact_sharded(
    store: &TemporalStore,
    path: impl AsRef<Path>,
    wal_gen: u64,
    shard: u32,
    shards: u32,
) -> Result<()> {
    write_atomic(
        path.as_ref(),
        ops_to_json_sharded(&store.compact_ops(), wal_gen, shard, shards).as_bytes(),
    )
}

/// The general compact-checkpoint writer: [`save_compact`] /
/// [`save_compact_sharded`] with the replication fencing `epoch`
/// stamped into the header (omitted when 0, so deployments that never
/// replicate keep byte-identical snapshots). A promoted follower
/// checkpoints through this so its new epoch survives restarts.
pub fn save_compact_stamped(
    store: &TemporalStore,
    path: impl AsRef<Path>,
    wal_gen: u64,
    shard: Option<(u32, u32)>,
    epoch: u64,
) -> Result<()> {
    write_atomic(
        path.as_ref(),
        ops_to_json_inner(&store.compact_ops(), wal_gen, shard, epoch).as_bytes(),
    )
}

/// Load a store from a JSON snapshot at `path`.
pub fn load(path: impl AsRef<Path>) -> Result<TemporalStore> {
    let json = fs::read_to_string(path)?;
    from_json(&json)
}

/// Load a store and its snapshot metadata from `path`.
pub fn load_with_meta(path: impl AsRef<Path>) -> Result<LoadedSnapshot> {
    let json = fs::read_to_string(path)?;
    from_json_with_meta(&json)
}

/// Write a compact binary WAL file to `path` (atomically).
pub fn save_wal(store: &TemporalStore, path: impl AsRef<Path>) -> Result<()> {
    write_atomic(path.as_ref(), &WalCodec::encode(store.wal()))
}

/// Load a store from a binary WAL file at `path`.
pub fn load_wal(path: impl AsRef<Path>) -> Result<TemporalStore> {
    let data = fs::read(path)?;
    let ops = WalCodec::decode(&data)?;
    TemporalStore::replay(&ops)
}

fn corrupt(msg: &str) -> Error {
    Error::Corrupt(msg.to_string())
}

fn op_to_json(op: &WalOp) -> Json {
    let mut m = Map::new();
    match op {
        WalOp::DeclareAttr { attr, schema } => {
            m.insert("op".into(), Json::from("declare_attr"));
            m.insert("attr".into(), Json::from(attr.as_str()));
            m.insert(
                "cardinality".into(),
                Json::from(match schema.cardinality {
                    Cardinality::One => "one",
                    Cardinality::Many => "many",
                }),
            );
            m.insert("keep_history".into(), Json::from(schema.keep_history));
            m.insert(
                "ttl_ms".into(),
                schema
                    .ttl
                    .map(|d| Json::from(d.as_millis()))
                    .unwrap_or(Json::Null),
            );
        }
        WalOp::NewEntity { name } => {
            m.insert("op".into(), Json::from("new_entity"));
            m.insert(
                "name".into(),
                name.map(|n| Json::from(n.as_str())).unwrap_or(Json::Null),
            );
        }
        WalOp::Assert {
            entity,
            attr,
            value,
            t,
            provenance,
        } => {
            m.insert("op".into(), Json::from("assert"));
            m.insert("entity".into(), Json::from(entity.0));
            m.insert("attr".into(), Json::from(attr.as_str()));
            m.insert("value".into(), value_to_json(*value));
            m.insert("t".into(), Json::from(t.0));
            m.insert("provenance".into(), prov_to_json(*provenance));
        }
        WalOp::Retract {
            entity,
            attr,
            value,
            t,
        } => {
            m.insert("op".into(), Json::from("retract"));
            m.insert("entity".into(), Json::from(entity.0));
            m.insert("attr".into(), Json::from(attr.as_str()));
            m.insert("value".into(), value_to_json(*value));
            m.insert("t".into(), Json::from(t.0));
        }
        WalOp::Replace {
            entity,
            attr,
            value,
            t,
            provenance,
        } => {
            m.insert("op".into(), Json::from("replace"));
            m.insert("entity".into(), Json::from(entity.0));
            m.insert("attr".into(), Json::from(attr.as_str()));
            m.insert("value".into(), value_to_json(*value));
            m.insert("t".into(), Json::from(t.0));
            m.insert("provenance".into(), prov_to_json(*provenance));
        }
        WalOp::RetractEntity { entity, t } => {
            m.insert("op".into(), Json::from("retract_entity"));
            m.insert("entity".into(), Json::from(entity.0));
            m.insert("t".into(), Json::from(t.0));
        }
        WalOp::Gc { horizon } => {
            m.insert("op".into(), Json::from("gc"));
            m.insert("horizon".into(), Json::from(horizon.0));
        }
    }
    Json::Object(m)
}

fn op_from_json(v: &Json) -> Result<WalOp> {
    let tag = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("WAL op missing \"op\" tag"))?;
    Ok(match tag {
        "declare_attr" => {
            let cardinality = match field_str(v, "cardinality")? {
                "one" => Cardinality::One,
                "many" => Cardinality::Many,
                x => return Err(Error::Corrupt(format!("bad cardinality {x:?}"))),
            };
            let keep_history = v
                .get("keep_history")
                .and_then(Json::as_bool)
                .ok_or_else(|| corrupt("declare_attr missing keep_history"))?;
            let ttl = match v.get("ttl_ms") {
                None | Some(Json::Null) => None,
                Some(ms) => Some(Duration::millis(
                    ms.as_u64().ok_or_else(|| corrupt("bad ttl_ms"))?,
                )),
            };
            WalOp::DeclareAttr {
                attr: Symbol::intern(field_str(v, "attr")?),
                schema: AttrSchema {
                    cardinality,
                    keep_history,
                    ttl,
                },
            }
        }
        "new_entity" => WalOp::NewEntity {
            name: match v.get("name") {
                None | Some(Json::Null) => None,
                Some(n) => Some(Symbol::intern(
                    n.as_str().ok_or_else(|| corrupt("bad entity name"))?,
                )),
            },
        },
        "assert" => WalOp::Assert {
            entity: EntityId(field_u64(v, "entity")?),
            attr: Symbol::intern(field_str(v, "attr")?),
            value: value_from_json(
                v.get("value")
                    .ok_or_else(|| corrupt("assert missing value"))?,
            )?,
            t: Timestamp(field_u64(v, "t")?),
            provenance: prov_from_json(
                v.get("provenance")
                    .ok_or_else(|| corrupt("assert missing provenance"))?,
            )?,
        },
        "retract" => WalOp::Retract {
            entity: EntityId(field_u64(v, "entity")?),
            attr: Symbol::intern(field_str(v, "attr")?),
            value: value_from_json(
                v.get("value")
                    .ok_or_else(|| corrupt("retract missing value"))?,
            )?,
            t: Timestamp(field_u64(v, "t")?),
        },
        "replace" => WalOp::Replace {
            entity: EntityId(field_u64(v, "entity")?),
            attr: Symbol::intern(field_str(v, "attr")?),
            value: value_from_json(
                v.get("value")
                    .ok_or_else(|| corrupt("replace missing value"))?,
            )?,
            t: Timestamp(field_u64(v, "t")?),
            provenance: prov_from_json(
                v.get("provenance")
                    .ok_or_else(|| corrupt("replace missing provenance"))?,
            )?,
        },
        "retract_entity" => WalOp::RetractEntity {
            entity: EntityId(field_u64(v, "entity")?),
            t: Timestamp(field_u64(v, "t")?),
        },
        "gc" => WalOp::Gc {
            horizon: Timestamp(field_u64(v, "horizon")?),
        },
        x => return Err(Error::Corrupt(format!("unknown WAL op {x:?}"))),
    })
}

fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| Error::Corrupt(format!("WAL op missing string field {key:?}")))
}

fn field_u64(v: &Json, key: &str) -> Result<u64> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| Error::Corrupt(format!("WAL op missing integer field {key:?}")))
}

fn value_to_json(v: Value) -> Json {
    let (tag, inner) = match v {
        Value::Null => return Json::Null,
        Value::Bool(b) => ("bool", Json::from(b)),
        Value::Int(i) => ("int", Json::from(i)),
        Value::Float(f) => (
            "float",
            serde_json::Number::from_f64(f)
                .map(Json::Number)
                .unwrap_or(Json::Null),
        ),
        Value::Str(s) => ("str", Json::from(s.as_str())),
        Value::Id(e) => ("id", Json::from(e.0)),
        Value::Time(t) => ("time", Json::from(t.0)),
    };
    let mut m = Map::new();
    m.insert(tag.into(), inner);
    Json::Object(m)
}

fn value_from_json(v: &Json) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let m = v.as_object().ok_or_else(|| corrupt("bad value encoding"))?;
    let (tag, inner) = m.iter().next().ok_or_else(|| corrupt("empty value tag"))?;
    Ok(match tag.as_str() {
        "bool" => Value::Bool(inner.as_bool().ok_or_else(|| corrupt("bad bool"))?),
        "int" => Value::Int(inner.as_i64().ok_or_else(|| corrupt("bad int"))?),
        "float" => Value::Float(inner.as_f64().ok_or_else(|| corrupt("bad float"))?),
        "str" => Value::str(inner.as_str().ok_or_else(|| corrupt("bad str"))?),
        "id" => Value::Id(EntityId(inner.as_u64().ok_or_else(|| corrupt("bad id"))?)),
        "time" => Value::Time(Timestamp(
            inner.as_u64().ok_or_else(|| corrupt("bad time"))?,
        )),
        x => return Err(Error::Corrupt(format!("unknown value tag {x:?}"))),
    })
}

fn prov_to_json(p: Provenance) -> Json {
    match p {
        Provenance::External => Json::from("external"),
        Provenance::Rule(r) => {
            let mut m = Map::new();
            m.insert("rule".into(), Json::from(r.as_str()));
            Json::Object(m)
        }
        Provenance::Derived(r) => {
            let mut m = Map::new();
            m.insert("derived".into(), Json::from(r.as_str()));
            Json::Object(m)
        }
    }
}

fn prov_from_json(v: &Json) -> Result<Provenance> {
    if v.as_str() == Some("external") {
        return Ok(Provenance::External);
    }
    if let Some(r) = v.get("rule").and_then(Json::as_str) {
        return Ok(Provenance::Rule(Symbol::intern(r)));
    }
    if let Some(r) = v.get("derived").and_then(Json::as_str) {
        return Ok(Provenance::Derived(Symbol::intern(r)));
    }
    Err(corrupt("bad provenance encoding"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrSchema;
    use fenestra_base::time::Timestamp;
    use fenestra_base::value::Value;

    fn sample() -> TemporalStore {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("visitor");
        s.replace_at(v, "room", "lobby", Timestamp::new(1)).unwrap();
        s.replace_at(v, "room", "lab", Timestamp::new(5)).unwrap();
        s.assert_at(v, "badge", 42i64, Timestamp::new(6)).unwrap();
        s
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let json = to_json(&s).unwrap();
        let r = from_json(&json).unwrap();
        let v = r.lookup_entity("visitor").unwrap();
        assert_eq!(r.current().value(v, "room"), Some(Value::str("lab")));
        assert_eq!(r.current().value(v, "badge"), Some(Value::Int(42)));
        assert_eq!(r.history(v, "room").len(), 2);
        assert_eq!(r.stored_fact_count(), s.stored_fact_count());
    }

    #[test]
    fn all_value_and_provenance_variants_round_trip() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.assert_at(e, "f", 2.5f64, Timestamp::new(1)).unwrap();
        s.assert_at(e, "b", true, Timestamp::new(2)).unwrap();
        s.assert_at(e, "r", Value::Id(e), Timestamp::new(3))
            .unwrap();
        s.assert_at(e, "w", Value::Time(Timestamp::new(9)), Timestamp::new(4))
            .unwrap();
        s.assert_at(e, "n", Value::Null, Timestamp::new(5)).unwrap();
        let r = from_json(&to_json(&s).unwrap()).unwrap();
        assert_eq!(r.wal(), s.wal());
    }

    #[test]
    fn file_round_trip() {
        let s = sample();
        let dir = std::env::temp_dir().join("fenestra-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("snap.json");
        save(&s, &p).unwrap();
        let r = load(&p).unwrap();
        assert_eq!(r.open_fact_count(), s.open_fact_count());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_wal_round_trip() {
        let s = sample();
        let dir = std::env::temp_dir().join("fenestra-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("store.wal");
        save_wal(&s, &p).unwrap();
        let r = load_wal(&p).unwrap();
        let v = r.lookup_entity("visitor").unwrap();
        assert_eq!(r.current().value(v, "room"), Some(Value::str("lab")));
        fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_json_rejected() {
        assert!(matches!(from_json("{not json"), Err(Error::Corrupt(_))));
        assert!(matches!(
            from_json("{\"version\": 99, \"ops\": []}"),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_snapshot_file_is_corrupt_not_panic() {
        let s = sample();
        let dir = std::env::temp_dir().join("fenestra-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("truncated-{}.json", std::process::id()));
        save(&s, &p).unwrap();
        // A crash mid-write of a *non-atomic* writer would leave a
        // prefix; loading one must fail cleanly.
        let full = fs::read(&p).unwrap();
        for cut in [1usize, full.len() / 2, full.len() - 2] {
            fs::write(&p, &full[..cut]).unwrap();
            assert!(
                matches!(load(&p), Err(Error::Corrupt(_))),
                "cut at {cut} must be Corrupt"
            );
        }
        fs::remove_file(&p).ok();
    }

    #[test]
    fn atomic_save_replaces_previous_snapshot_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("fenestra-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("atomic-{}.json", std::process::id()));
        let old = sample();
        save(&old, &p).unwrap();
        let mut newer = sample();
        let v = newer.lookup_entity("visitor").unwrap();
        newer
            .replace_at(v, "room", "exit", Timestamp::new(9))
            .unwrap();
        save(&newer, &p).unwrap();
        let r = load(&p).unwrap();
        let rv = r.lookup_entity("visitor").unwrap();
        assert_eq!(r.current().value(rv, "room"), Some(Value::str("exit")));
        // No stray temp files from the atomic protocol.
        let strays: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "{strays:?}");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn compact_snapshot_carries_wal_gen_and_round_trips() {
        let s = sample();
        let dir = std::env::temp_dir().join("fenestra-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("compact-{}.json", std::process::id()));
        save_compact(&s, &p, 7).unwrap();
        let loaded = load_with_meta(&p).unwrap();
        assert_eq!(loaded.wal_gen, 7);
        assert!(loaded.op_count > 0);
        let v = loaded.store.lookup_entity("visitor").unwrap();
        assert_eq!(
            loaded.store.current().value(v, "room"),
            Some(Value::str("lab"))
        );
        assert_eq!(
            loaded.store.history(v, "room"),
            s.history(s.lookup_entity("visitor").unwrap(), "room")
        );
        fs::remove_file(&p).ok();
    }

    #[test]
    fn legacy_snapshot_without_wal_gen_loads_as_gen_zero() {
        let s = sample();
        let loaded = from_json_with_meta(&to_json(&s).unwrap()).unwrap();
        assert_eq!(loaded.wal_gen, 0);
        assert!(loaded.op_count > 0);
    }
}

#[cfg(test)]
mod gc_persist_tests {
    use super::*;
    use fenestra_base::time::Timestamp;

    #[test]
    fn gc_does_not_resurrect_on_load() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.replace_at(e, "room", "a", Timestamp::new(1)).unwrap();
        s.replace_at(e, "room", "b", Timestamp::new(5)).unwrap();
        s.replace_at(e, "room", "c", Timestamp::new(9)).unwrap();
        let reclaimed = s.gc(Timestamp::new(100));
        assert_eq!(reclaimed, 2);
        let loaded = from_json(&to_json(&s).unwrap()).unwrap();
        assert_eq!(
            loaded.stored_fact_count(),
            s.stored_fact_count(),
            "reclaimed history must stay reclaimed after a round trip"
        );
        assert_eq!(loaded.history(e, "room").len(), 1);
    }
}
