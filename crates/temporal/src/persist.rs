//! Whole-store persistence.
//!
//! A store snapshot is serialized as JSON (human-inspectable — the
//! "queryable state" deliverable extends to files on disk) containing
//! the WAL; loading replays it. Since the WAL deterministically
//! reconstructs the store, this is both simple and exactly as
//! expressive as serializing the materialized indexes.

use crate::store::TemporalStore;
use crate::wal::{WalCodec, WalOp};
use fenestra_base::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// On-disk snapshot format.
#[derive(Debug, Serialize, Deserialize)]
struct SnapshotFile {
    /// Format version for forward compatibility.
    version: u32,
    /// The full journal.
    ops: Vec<WalOp>,
}

const FORMAT_VERSION: u32 = 1;

/// Serialize the store's journal to a JSON string.
pub fn to_json(store: &TemporalStore) -> Result<String> {
    let file = SnapshotFile {
        version: FORMAT_VERSION,
        ops: store.wal().to_vec(),
    };
    serde_json::to_string(&file).map_err(|e| Error::Io(e.to_string()))
}

/// Rebuild a store from [`to_json`] output.
pub fn from_json(json: &str) -> Result<TemporalStore> {
    let file: SnapshotFile =
        serde_json::from_str(json).map_err(|e| Error::Corrupt(e.to_string()))?;
    if file.version != FORMAT_VERSION {
        return Err(Error::Corrupt(format!(
            "snapshot version {} unsupported (expected {})",
            file.version, FORMAT_VERSION
        )));
    }
    TemporalStore::replay(&file.ops)
}

/// Write a JSON snapshot to `path`.
pub fn save(store: &TemporalStore, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, to_json(store)?).map_err(Error::from)
}

/// Load a store from a JSON snapshot at `path`.
pub fn load(path: impl AsRef<Path>) -> Result<TemporalStore> {
    let json = fs::read_to_string(path)?;
    from_json(&json)
}

/// Write a compact binary WAL file to `path`.
pub fn save_wal(store: &TemporalStore, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, WalCodec::encode(store.wal())).map_err(Error::from)
}

/// Load a store from a binary WAL file at `path`.
pub fn load_wal(path: impl AsRef<Path>) -> Result<TemporalStore> {
    let data = fs::read(path)?;
    let ops = WalCodec::decode(&data)?;
    TemporalStore::replay(&ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrSchema;
    use fenestra_base::time::Timestamp;
    use fenestra_base::value::Value;

    fn sample() -> TemporalStore {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v = s.named_entity("visitor");
        s.replace_at(v, "room", "lobby", Timestamp::new(1)).unwrap();
        s.replace_at(v, "room", "lab", Timestamp::new(5)).unwrap();
        s.assert_at(v, "badge", 42i64, Timestamp::new(6)).unwrap();
        s
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let json = to_json(&s).unwrap();
        let r = from_json(&json).unwrap();
        let v = r.lookup_entity("visitor").unwrap();
        assert_eq!(r.current().value(v, "room"), Some(Value::str("lab")));
        assert_eq!(r.current().value(v, "badge"), Some(Value::Int(42)));
        assert_eq!(r.history(v, "room").len(), 2);
        assert_eq!(r.stored_fact_count(), s.stored_fact_count());
    }

    #[test]
    fn file_round_trip() {
        let s = sample();
        let dir = std::env::temp_dir().join("fenestra-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("snap.json");
        save(&s, &p).unwrap();
        let r = load(&p).unwrap();
        assert_eq!(r.open_fact_count(), s.open_fact_count());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_wal_round_trip() {
        let s = sample();
        let dir = std::env::temp_dir().join("fenestra-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("store.wal");
        save_wal(&s, &p).unwrap();
        let r = load_wal(&p).unwrap();
        let v = r.lookup_entity("visitor").unwrap();
        assert_eq!(r.current().value(v, "room"), Some(Value::str("lab")));
        fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_json_rejected() {
        assert!(matches!(from_json("{not json"), Err(Error::Corrupt(_))));
        assert!(matches!(
            from_json("{\"version\": 99, \"ops\": []}"),
            Err(Error::Corrupt(_))
        ));
    }
}

#[cfg(test)]
mod gc_persist_tests {
    use super::*;
    use fenestra_base::time::Timestamp;

    #[test]
    fn gc_does_not_resurrect_on_load() {
        let mut s = TemporalStore::new();
        let e = s.new_entity();
        s.replace_at(e, "room", "a", Timestamp::new(1)).unwrap();
        s.replace_at(e, "room", "b", Timestamp::new(5)).unwrap();
        s.replace_at(e, "room", "c", Timestamp::new(9)).unwrap();
        let reclaimed = s.gc(Timestamp::new(100));
        assert_eq!(reclaimed, 2);
        let loaded = from_json(&to_json(&s).unwrap()).unwrap();
        assert_eq!(
            loaded.stored_fact_count(),
            s.stored_fact_count(),
            "reclaimed history must stay reclaimed after a round trip"
        );
        assert_eq!(loaded.history(e, "room").len(), 1);
    }
}
