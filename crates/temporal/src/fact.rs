//! Facts and stored state elements.

use fenestra_base::symbol::Symbol;
use fenestra_base::time::Interval;
use fenestra_base::value::{EntityId, Value};
use std::fmt;

/// Interned attribute name.
pub type AttrId = Symbol;

/// Identifier of a stored fact (index into the store's arena). Ids are
/// stable for the lifetime of the store: GC tombstones reclaimed slots
/// instead of compacting, so a reclaimed id simply resolves to `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactId(pub u64);

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An EAV fact: the timeless part of a state element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The entity the fact is about.
    pub entity: EntityId,
    /// The attribute (interned name).
    pub attr: AttrId,
    /// The value.
    pub value: Value,
}

impl Fact {
    /// Construct a fact.
    pub fn new(entity: EntityId, attr: impl Into<AttrId>, value: impl Into<Value>) -> Fact {
        Fact {
            entity,
            attr: attr.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.entity, self.attr, self.value)
    }
}

/// Who put a fact into the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Asserted directly through the store API.
    External,
    /// Asserted by a state-management rule (the rule's name).
    Rule(Symbol),
    /// Derived by the reasoning component (the ontology rule's name).
    Derived(Symbol),
}

impl Provenance {
    /// Whether the fact was produced by reasoning (derived facts are
    /// maintained by the reasoner, not retracted by users).
    pub fn is_derived(&self) -> bool {
        matches!(self, Provenance::Derived(_))
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::External => write!(f, "external"),
            Provenance::Rule(r) => write!(f, "rule:{r}"),
            Provenance::Derived(r) => write!(f, "derived:{r}"),
        }
    }
}

/// A state element: a fact plus its time of validity and provenance.
///
/// This is exactly the paper's notion of state: "a collection of data
/// elements annotated with their time of validity".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredFact {
    /// The fact identifier (arena index).
    pub id: FactId,
    /// The EAV triple.
    pub fact: Fact,
    /// Half-open validity interval.
    pub validity: Interval,
    /// Who asserted it.
    pub provenance: Provenance,
}

impl StoredFact {
    /// Whether the fact is currently valid (open interval).
    pub fn is_open(&self) -> bool {
        self.validity.is_open()
    }
}

impl fmt::Display for StoredFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.fact, self.validity, self.provenance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::time::Timestamp;

    #[test]
    fn fact_display() {
        let f = Fact::new(EntityId(1), "room", "lobby");
        assert_eq!(f.to_string(), "(#1 room \"lobby\")");
    }

    #[test]
    fn provenance_kinds() {
        assert!(!Provenance::External.is_derived());
        assert!(!Provenance::Rule(Symbol::intern("r")).is_derived());
        assert!(Provenance::Derived(Symbol::intern("subclass")).is_derived());
        assert_eq!(
            Provenance::Rule(Symbol::intern("move")).to_string(),
            "rule:move"
        );
    }

    #[test]
    fn stored_fact_openness() {
        let sf = StoredFact {
            id: FactId(0),
            fact: Fact::new(EntityId(1), "a", 1i64),
            validity: Interval::open(Timestamp::new(5)),
            provenance: Provenance::External,
        };
        assert!(sf.is_open());
        let mut closed = sf;
        closed.validity.close_at(Timestamp::new(9));
        assert!(!closed.is_open());
    }
}
