//! Mutation counters for the store.

/// Counters describing the work a store has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful `assert_at` calls that created a fact.
    pub asserts: u64,
    /// Successful `retract_at` calls (plus per-fact entity retracts).
    pub retracts: u64,
    /// Successful, state-changing `replace_at` calls.
    pub replaces: u64,
    /// GC passes executed.
    pub gcs: u64,
    /// Facts reclaimed across all GC passes.
    pub reclaimed: u64,
}

impl StoreStats {
    /// Total state transitions (asserts + retracts + replaces).
    pub fn transitions(&self) -> u64 {
        self.asserts + self.retracts + self.replaces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_sum() {
        let s = StoreStats {
            asserts: 3,
            retracts: 2,
            replaces: 5,
            gcs: 1,
            reclaimed: 4,
        };
        assert_eq!(s.transitions(), 10);
    }
}
