//! Property tests for histogram merging: merging per-shard snapshots
//! must be indistinguishable from one histogram that saw every sample.

use fenestra_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

proptest! {
    /// Satellite invariant: merged per-shard snapshots == a single
    /// histogram fed the union of the samples, bucket for bucket.
    #[test]
    fn merged_shards_equal_union_histogram(
        shards in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..64),
            1..6,
        )
    ) {
        let mut merged = HistogramSnapshot::default();
        let union = Histogram::new();
        for samples in &shards {
            let shard = Histogram::new();
            for &v in samples {
                shard.record(v);
                union.record(v);
            }
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(merged, union.snapshot());
    }

    /// Quantiles are monotone in q and bounded by the recorded max.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(any::<u64>(), 1..128)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= last, "quantile({q}) regressed");
            prop_assert!(v <= s.max);
            last = v;
        }
        prop_assert_eq!(s.max, samples.iter().copied().max().unwrap());
        prop_assert_eq!(s.count, samples.len() as u64);
    }

    /// Merge is order-independent (commutative + associative over a
    /// fold), so fan-out order across shards can't change `stats`.
    #[test]
    fn merge_is_order_independent(
        a in prop::collection::vec(any::<u64>(), 0..32),
        b in prop::collection::vec(any::<u64>(), 0..32),
        c in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let snap = |samples: &[u64]| {
            let h = Histogram::new();
            for &v in samples {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        let mut abc = sa.clone();
        abc.merge(&sb);
        abc.merge(&sc);
        let mut cba = sc;
        cba.merge(&sb);
        cba.merge(&sa);
        prop_assert_eq!(abc, cba);
    }
}
