//! # fenestra-obs — pipeline observability
//!
//! Lock-free latency histograms and per-shard gauges for the ingest
//! pipeline. The event lifecycle fenestrad instruments with these:
//!
//! ```text
//! socket read → parse/route/enqueue  (admit_us, server-wide)
//!             → ingest-queue wait    (queue_wait_us, per shard)
//!             → reorder-buffer dwell (reorder_dwell_us, per shard)
//!             → WAL append           (wal_append_us, per shard)
//!             → fsync                (fsync_us, per shard)
//!             → durable-ack release  (ack_hold_us, per shard)
//! ```
//!
//! plus a lateness-margin histogram (`late_margin_ms`) that records
//! *how far* behind the watermark each dropped event was — turning
//! "why were 59% of events dropped?" into a distribution query.
//!
//! Design constraints, in order:
//!
//! 1. **Never block the hot path.** Histograms are fixed arrays of
//!    relaxed atomics ([`Histogram`]); recording is a few `fetch_add`s.
//! 2. **Metrics reads don't touch the pipeline.** Readers snapshot
//!    atomics; they never take the engine lock or enqueue through the
//!    shard queues.
//! 3. **Exact merges.** Per-shard [`HistogramSnapshot`]s merge into a
//!    whole-pipeline view identical to a single histogram fed the
//!    union of samples (property-tested).
//!
//! This crate has no dependency on the rest of fenestra, so every
//! layer (temporal's WAL writer, core's engine, the server) can depend
//! on it without cycles.

#![warn(missing_docs)]

mod histogram;
mod pipeline;

pub use histogram::{bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use pipeline::{
    EngineCounters, EngineGauges, PipelineObs, PlanObs, ReplObs, ShardObs, WalObs, STAGES,
};
