//! Lock-free fixed-bucket latency histograms.
//!
//! Values land in power-of-two (log2) buckets: bucket 0 holds exactly
//! the value 0, bucket `i` (i ≥ 1) holds values in `[2^(i-1), 2^i)`.
//! 65 buckets cover the whole `u64` range, so recording never clamps
//! or saturates. Recording is a single relaxed `fetch_add` per bucket
//! plus count/sum updates and a `fetch_max` for the true maximum —
//! there are no locks anywhere, so hot paths (shard loops, WAL
//! writers) can record without contending with metrics readers.
//!
//! Readers take a [`HistogramSnapshot`] — a plain `Copy`-free struct of
//! `u64`s — and can [`HistogramSnapshot::merge`] per-shard snapshots
//! into a cluster-wide view. Merging snapshots is exact: bucket counts,
//! totals, and sums add, and the max is the max of maxes, so a merged
//! snapshot is indistinguishable from one histogram fed the union of
//! the samples (property-tested in this crate).

use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::{Map, Value as Json};

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `1 + floor(log2(v))`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i`: the largest value it can hold.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A lock-free log2 histogram. Concurrent `record` calls never block;
/// `snapshot` reads are relaxed loads and may observe a record that is
/// mid-flight (bucket visible, sum not yet), which is fine for
/// monitoring and converges as soon as the writer finishes.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A plain-data copy of a [`Histogram`], mergeable across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_upper_bound`] for bounds).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one. Exact: the result equals a
    /// snapshot of one histogram that saw both sample sets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`, as the inclusive upper
    /// bound of the bucket holding that rank (clamped to the recorded
    /// max, so a one-sample histogram reports the sample itself at
    /// every quantile). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Summary as a JSON object: `{count, p50, p90, p99, max, mean}`.
    /// Bucket-resolution quantiles: a reported pNN is the upper bound
    /// of its log2 bucket, i.e. within 2x of the true rank value.
    pub fn json_summary(&self) -> Json {
        let mut obj = Map::new();
        obj.insert("count".into(), Json::from(self.count));
        obj.insert("p50".into(), Json::from(self.quantile(0.50)));
        obj.insert("p90".into(), Json::from(self.quantile(0.90)));
        obj.insert("p99".into(), Json::from(self.quantile(0.99)));
        obj.insert("max".into(), Json::from(self.max));
        obj.insert(
            "mean".into(),
            serde_json::Number::from_f64((self.mean() * 100.0).round() / 100.0)
                .map(Json::Number)
                .unwrap_or(Json::from(0u64)),
        );
        Json::Object(obj)
    }

    /// Index of the highest non-empty bucket, if any.
    pub fn highest_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&b| b != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value's bucket upper bound is >= the value and the
        // previous bucket's bound is < the value.
        for v in [1u64, 2, 3, 5, 127, 128, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_upper_bound(i) >= v);
            assert!(i == 0 || bucket_upper_bound(i - 1) < v);
        }
    }

    #[test]
    fn quantiles_clamp_to_max() {
        let h = Histogram::new();
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.quantile(0.50), 100);
        assert_eq!(s.quantile(0.99), 100);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 4, upper bound 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, upper bound 1023
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50), 15);
        assert_eq!(s.quantile(0.90), 15);
        assert_eq!(s.quantile(0.99), 1000, "clamped to max");
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 90 * 10 + 10 * 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.highest_bucket(), None);
        let j = s.json_summary();
        assert_eq!(j.get("count").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    fn merge_adds_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(7);
        b.record(1000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 1012);
        assert_eq!(m.max, 1000);
        assert_eq!(m.quantile(1.0), 1000);
    }

    #[test]
    fn json_summary_shape() {
        let h = Histogram::new();
        h.record(3);
        h.record(3);
        let j = h.snapshot().json_summary();
        for key in ["count", "p50", "p90", "p99", "max", "mean"] {
            assert!(j.get(key).is_some(), "{key}");
        }
        assert_eq!(j.get("mean").and_then(|v| v.as_f64()), Some(3.0));
    }
}
