//! Per-shard pipeline instrumentation: stage-latency histograms and
//! gauges threaded through the whole ingest path.
//!
//! One [`ShardObs`] lives per shard and is shared (via `Arc`) by the
//! connection threads (queue depth at enqueue), the shard loop (queue
//! wait, ack hold, gauges), the engine (reorder dwell, late margin,
//! engine-counter gauges), and the WAL writer (append/fsync timing via
//! the embedded [`WalObs`]). Everything inside is atomic: recording
//! never takes a lock, and metrics readers (the `stats` command, the
//! Prometheus endpoint) only do relaxed loads — they never enqueue
//! through the ingest path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde_json::{Map, Value as Json};

use crate::histogram::{Histogram, HistogramSnapshot};

/// Stage names, in pipeline order. Each names a histogram on
/// [`ShardObs`]; the `_us`/`_ms` suffix is the unit.
pub const STAGES: [&str; 6] = [
    "queue_wait_us",
    "reorder_dwell_us",
    "wal_append_us",
    "fsync_us",
    "ack_hold_us",
    "late_margin_ms",
];

/// WAL write-path timing, owned by the shard but updated from inside
/// the WAL writer (which is the only place that knows whether an
/// `append` also fsynced).
#[derive(Debug, Default)]
pub struct WalObs {
    /// Time spent encoding + writing a batch to the segment file (µs),
    /// excluding any fsync the policy triggered.
    pub append_us: Histogram,
    /// Time spent in `fdatasync` (µs), one sample per actual sync.
    pub fsync_us: Histogram,
}

/// Engine counters mirrored into atomics so metrics readers can see
/// them without locking the engine or enqueueing through its queue.
/// The shard loop publishes after every applied batch.
#[derive(Debug, Default)]
pub struct EngineGauges {
    events: AtomicU64,
    late_dropped: AtomicU64,
    rule_fired: AtomicU64,
    transitions: AtomicU64,
    guard_blocked: AtomicU64,
    rule_errors: AtomicU64,
    reason_asserted: AtomicU64,
    reason_retracted: AtomicU64,
    reason_syncs: AtomicU64,
    ttl_expired: AtomicU64,
}

/// A plain copy of the engine counters, for publishing into and
/// loading out of [`EngineGauges`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events admitted past the watermark and applied.
    pub events: u64,
    /// Events dropped as late.
    pub late_dropped: u64,
    /// Rule firings.
    pub rule_fired: u64,
    /// State transitions applied.
    pub transitions: u64,
    /// Rule firings blocked by guards.
    pub guard_blocked: u64,
    /// Rule evaluation errors.
    pub rule_errors: u64,
    /// Reasoner assertions.
    pub reason_asserted: u64,
    /// Reasoner retractions.
    pub reason_retracted: u64,
    /// Reasoner sync passes.
    pub reason_syncs: u64,
    /// Facts expired by TTL.
    pub ttl_expired: u64,
}

impl EngineGauges {
    /// Publish a fresh copy of the counters (relaxed stores).
    pub fn store(&self, c: &EngineCounters) {
        self.events.store(c.events, Ordering::Relaxed);
        self.late_dropped.store(c.late_dropped, Ordering::Relaxed);
        self.rule_fired.store(c.rule_fired, Ordering::Relaxed);
        self.transitions.store(c.transitions, Ordering::Relaxed);
        self.guard_blocked.store(c.guard_blocked, Ordering::Relaxed);
        self.rule_errors.store(c.rule_errors, Ordering::Relaxed);
        self.reason_asserted
            .store(c.reason_asserted, Ordering::Relaxed);
        self.reason_retracted
            .store(c.reason_retracted, Ordering::Relaxed);
        self.reason_syncs.store(c.reason_syncs, Ordering::Relaxed);
        self.ttl_expired.store(c.ttl_expired, Ordering::Relaxed);
    }

    /// Load the last published copy.
    pub fn load(&self) -> EngineCounters {
        EngineCounters {
            events: self.events.load(Ordering::Relaxed),
            late_dropped: self.late_dropped.load(Ordering::Relaxed),
            rule_fired: self.rule_fired.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
            guard_blocked: self.guard_blocked.load(Ordering::Relaxed),
            rule_errors: self.rule_errors.load(Ordering::Relaxed),
            reason_asserted: self.reason_asserted.load(Ordering::Relaxed),
            reason_retracted: self.reason_retracted.load(Ordering::Relaxed),
            reason_syncs: self.reason_syncs.load(Ordering::Relaxed),
            ttl_expired: self.ttl_expired.load(Ordering::Relaxed),
        }
    }
}

/// All observability state for one shard.
#[derive(Debug)]
pub struct ShardObs {
    /// Time a frame part sat in the shard's ingest queue before the
    /// shard loop dequeued it (µs), one sample per queued command.
    pub queue_wait_us: Histogram,
    /// Time an event sat in the reorder buffer before the watermark
    /// released it (µs), one sample per drained event.
    pub reorder_dwell_us: Histogram,
    /// Time from admission to durable-ack release (µs), one sample per
    /// released frame part. Only recorded in durable-ack mode.
    pub ack_hold_us: Histogram,
    /// How late each *dropped* event was: shard watermark minus event
    /// timestamp at admission (ms). `count` here equals the shard's
    /// `late_dropped` counter.
    pub late_margin_ms: Histogram,
    /// WAL write-path timing (shared with the shard's WAL writer).
    pub wal: Arc<WalObs>,
    /// Current ingest-queue depth (refreshed at enqueue and dequeue).
    pub queue_depth: AtomicU64,
    /// High-water mark of this shard's own queue depth.
    pub queue_hwm: AtomicU64,
    /// Current reorder-buffer depth (events admitted, not yet applied).
    pub reorder_depth: AtomicU64,
    /// Watermark lag: max event time seen minus current watermark (ms).
    /// Equals the lateness bound once the stream is flowing.
    pub watermark_lag_ms: AtomicU64,
    /// Durable acks currently held awaiting WAL-covered commit.
    pub held_acks: AtomicU64,
    /// Bytes in the shard's current (unrotated) WAL segment.
    pub wal_segment_bytes: AtomicU64,
    /// The shard's current WAL segment generation.
    pub wal_gen: AtomicU64,
    /// Oldest segment generation still on disk for this shard
    /// (refreshed at boot and checkpoint — a directory scan, not a
    /// per-batch cost). Normally equals `wal_gen`; lower means a
    /// rotation's delete failed or is in flight.
    pub wal_oldest_gen: AtomicU64,
    /// Segment files on disk for this shard (same refresh cadence as
    /// `wal_oldest_gen`). Normally 1.
    pub wal_segments: AtomicU64,
    /// Replication lag for this shard on a follower: leader segment
    /// bytes not yet applied locally (0 on leaders / unreplicated).
    pub repl_lag_bytes: AtomicU64,
    /// Live state size: currently-open facts in the shard's store.
    pub state_facts: AtomicU64,
    /// Engine counters, republished after every applied batch.
    pub engine: EngineGauges,
}

impl Default for ShardObs {
    fn default() -> Self {
        ShardObs {
            queue_wait_us: Histogram::new(),
            reorder_dwell_us: Histogram::new(),
            ack_hold_us: Histogram::new(),
            late_margin_ms: Histogram::new(),
            wal: Arc::new(WalObs::default()),
            queue_depth: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            reorder_depth: AtomicU64::new(0),
            watermark_lag_ms: AtomicU64::new(0),
            held_acks: AtomicU64::new(0),
            wal_segment_bytes: AtomicU64::new(0),
            wal_gen: AtomicU64::new(0),
            wal_oldest_gen: AtomicU64::new(0),
            wal_segments: AtomicU64::new(0),
            repl_lag_bytes: AtomicU64::new(0),
            state_facts: AtomicU64::new(0),
            engine: EngineGauges::default(),
        }
    }
}

impl ShardObs {
    /// The stage histogram named by one of [`STAGES`].
    pub fn stage(&self, name: &str) -> &Histogram {
        match name {
            "queue_wait_us" => &self.queue_wait_us,
            "reorder_dwell_us" => &self.reorder_dwell_us,
            "wal_append_us" => &self.wal.append_us,
            "fsync_us" => &self.wal.fsync_us,
            "ack_hold_us" => &self.ack_hold_us,
            "late_margin_ms" => &self.late_margin_ms,
            other => panic!("unknown stage `{other}`"),
        }
    }

    /// Record the current queue depth, tracking this shard's HWM.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Gauges as a JSON object (no histograms).
    pub fn gauges_json(&self) -> Json {
        let mut obj = Map::new();
        obj.insert(
            "queue_depth".into(),
            Json::from(self.queue_depth.load(Ordering::Relaxed)),
        );
        obj.insert(
            "queue_hwm".into(),
            Json::from(self.queue_hwm.load(Ordering::Relaxed)),
        );
        obj.insert(
            "reorder_depth".into(),
            Json::from(self.reorder_depth.load(Ordering::Relaxed)),
        );
        obj.insert(
            "watermark_lag_ms".into(),
            Json::from(self.watermark_lag_ms.load(Ordering::Relaxed)),
        );
        obj.insert(
            "held_acks".into(),
            Json::from(self.held_acks.load(Ordering::Relaxed)),
        );
        obj.insert(
            "wal_segment_bytes".into(),
            Json::from(self.wal_segment_bytes.load(Ordering::Relaxed)),
        );
        obj.insert(
            "wal_gen".into(),
            Json::from(self.wal_gen.load(Ordering::Relaxed)),
        );
        obj.insert(
            "wal_oldest_gen".into(),
            Json::from(self.wal_oldest_gen.load(Ordering::Relaxed)),
        );
        obj.insert(
            "wal_segments".into(),
            Json::from(self.wal_segments.load(Ordering::Relaxed)),
        );
        obj.insert(
            "repl_lag_bytes".into(),
            Json::from(self.repl_lag_bytes.load(Ordering::Relaxed)),
        );
        obj.insert(
            "state_facts".into(),
            Json::from(self.state_facts.load(Ordering::Relaxed)),
        );
        Json::Object(obj)
    }

    /// All stage histograms as `{stage: {count, p50, …}}`.
    pub fn stages_json(&self) -> Json {
        let mut obj = Map::new();
        for stage in STAGES {
            obj.insert(stage.into(), self.stage(stage).snapshot().json_summary());
        }
        Json::Object(obj)
    }
}

/// Replication observability, shared by the leader's shipping threads
/// and the follower's apply loop (a process is only ever one or the
/// other at a time, so the two halves never contend; after promotion
/// the follower half simply goes quiet). Same discipline as the rest
/// of the pipeline: atomics and lock-free histograms only.
#[derive(Debug, Default)]
pub struct ReplObs {
    /// Leader: follower connections currently being served.
    pub followers: AtomicU64,
    /// Leader: WAL frames shipped to followers (counter).
    pub ship_frames: AtomicU64,
    /// Leader: segment bytes shipped to followers (counter).
    pub ship_bytes: AtomicU64,
    /// Leader: bootstrap snapshots shipped (counter).
    pub snapshots_shipped: AtomicU64,
    /// Both roles: replication messages refused by epoch fencing.
    pub fenced: AtomicU64,
    /// Leader: ship → applied-and-durable-on-follower → ack latency
    /// (µs), from the `sent_at_us` echo in follower acks.
    pub ack_lag_us: Histogram,
    /// Follower: shipped WAL frames applied locally (counter).
    pub applied_frames: AtomicU64,
    /// Follower: ops applied from shipped frames (counter).
    pub applied_ops: AtomicU64,
    /// Follower: shipped segment bytes applied locally (counter).
    pub applied_bytes: AtomicU64,
    /// Follower: time to apply one shipped batch — local WAL append +
    /// fsync + store apply (µs).
    pub apply_us: Histogram,
    /// Follower: reconnects to the leader (counter).
    pub reconnects: AtomicU64,
    /// Leader, sync mode: extra wait between local group-commit fsync
    /// and replica coverage for each released sync ack batch (µs).
    pub sync_wait_us: Histogram,
    /// Leader, sync mode: ack parts released because ≥N followers
    /// covered their WAL bytes (counter).
    pub sync_acks_ok: AtomicU64,
    /// Leader, sync mode: ack parts failed because coverage did not
    /// arrive within `--sync-timeout-ms` (counter).
    pub sync_acks_timeout: AtomicU64,
    /// Leader, sync mode: ack parts released on local durability alone
    /// after the sync timeout, because `--sync-fallback` is set
    /// (counter).
    pub sync_acks_fallback: AtomicU64,
    /// Leader, sync mode: ack parts currently parked awaiting replica
    /// coverage (gauge).
    pub sync_waiting: AtomicU64,
    /// Both roles: the current fencing epoch.
    pub epoch: AtomicU64,
    /// 1 while following (read-only), 0 while leading. Flips at
    /// promotion.
    pub following: AtomicU64,
    /// Follower: unix millis of the last frame or heartbeat from the
    /// leader (0 before first contact). Feeds leader-death detection
    /// and lets dashboards alert on silence.
    pub last_leader_contact_ms: AtomicU64,
}

impl ReplObs {
    /// Everything as one JSON object (counters plus histogram
    /// summaries), the `stats` reply's `replication` section.
    pub fn json(&self) -> Json {
        let g = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        let mut obj = Map::new();
        obj.insert(
            "role".into(),
            Json::from(if self.following.load(Ordering::Relaxed) == 1 {
                "follower"
            } else {
                "leader"
            }),
        );
        obj.insert("epoch".into(), g(&self.epoch));
        obj.insert("followers".into(), g(&self.followers));
        obj.insert("ship_frames".into(), g(&self.ship_frames));
        obj.insert("ship_bytes".into(), g(&self.ship_bytes));
        obj.insert("snapshots_shipped".into(), g(&self.snapshots_shipped));
        obj.insert("fenced".into(), g(&self.fenced));
        obj.insert(
            "ack_lag_us".into(),
            self.ack_lag_us.snapshot().json_summary(),
        );
        obj.insert("applied_frames".into(), g(&self.applied_frames));
        obj.insert("applied_ops".into(), g(&self.applied_ops));
        obj.insert("applied_bytes".into(), g(&self.applied_bytes));
        obj.insert("apply_us".into(), self.apply_us.snapshot().json_summary());
        obj.insert("reconnects".into(), g(&self.reconnects));
        obj.insert(
            "sync_wait_us".into(),
            self.sync_wait_us.snapshot().json_summary(),
        );
        obj.insert("sync_acks_ok".into(), g(&self.sync_acks_ok));
        obj.insert("sync_acks_timeout".into(), g(&self.sync_acks_timeout));
        obj.insert("sync_acks_fallback".into(), g(&self.sync_acks_fallback));
        obj.insert("sync_waiting".into(), g(&self.sync_waiting));
        obj.insert(
            "last_leader_contact_ms".into(),
            g(&self.last_leader_contact_ms),
        );
        Json::Object(obj)
    }
}

/// Query-planner instrumentation: compile and execution latency of
/// cached plans. Compiles are sampled on plan-cache misses only (hits
/// skip compilation entirely); executions are sampled once per query
/// dispatch, covering shard fan-out and merge.
#[derive(Debug, Default)]
pub struct PlanObs {
    /// Time to parse + plan + lower one statement (µs), one sample per
    /// plan-cache miss.
    pub compile_us: Histogram,
    /// Time to execute one compiled plan end to end (µs), one sample
    /// per query dispatch (fan-out + merge included).
    pub exec_us: Histogram,
}

impl PlanObs {
    /// Both histograms as `{compile_us: {...}, exec_us: {...}}`.
    pub fn json(&self) -> Json {
        let mut obj = Map::new();
        obj.insert(
            "compile_us".into(),
            self.compile_us.snapshot().json_summary(),
        );
        obj.insert("exec_us".into(), self.exec_us.snapshot().json_summary());
        Json::Object(obj)
    }
}

/// Observability for the whole pipeline: one server-level admission
/// histogram plus one [`ShardObs`] per shard.
#[derive(Debug)]
pub struct PipelineObs {
    /// Time to parse, route, and enqueue one ingest frame on the
    /// connection thread (µs) — the "front door" before queue wait.
    pub admit_us: Histogram,
    /// Binary plane: time to CRC-check and decode one frame out of a
    /// connection's read buffer into events (µs), one sample per
    /// frame. Quiet unless binary clients are connected.
    pub decode_us: Histogram,
    /// Binary plane: time one reactor readiness event took to handle —
    /// read, decode, route, and enqueue everything it made available
    /// (µs), one sample per dispatched readiness event.
    pub reactor_dispatch_us: Histogram,
    /// Per-shard instrumentation, indexed by shard id.
    pub shards: Vec<Arc<ShardObs>>,
    /// Replication instrumentation (quiet when not replicating).
    pub repl: Arc<ReplObs>,
    /// Query-planner instrumentation (compile + exec latency).
    pub plan: Arc<PlanObs>,
}

impl PipelineObs {
    /// Fresh instrumentation for `shards` shards.
    pub fn new(shards: usize) -> PipelineObs {
        PipelineObs {
            admit_us: Histogram::new(),
            decode_us: Histogram::new(),
            reactor_dispatch_us: Histogram::new(),
            shards: (0..shards).map(|_| Arc::new(ShardObs::default())).collect(),
            repl: Arc::new(ReplObs::default()),
            plan: Arc::new(PlanObs::default()),
        }
    }

    /// Merge one stage's snapshots across every shard.
    pub fn merged_stage(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for shard in &self.shards {
            merged.merge(&shard.stage(name).snapshot());
        }
        merged
    }

    /// All stages merged across shards, plus the connection-plane
    /// histograms (`admit_us`, `decode_us`, `reactor_dispatch_us`), as
    /// `{stage: {count, p50, …}}`.
    pub fn merged_stages_json(&self) -> Json {
        let mut obj = Map::new();
        obj.insert("admit_us".into(), self.admit_us.snapshot().json_summary());
        obj.insert("decode_us".into(), self.decode_us.snapshot().json_summary());
        obj.insert(
            "reactor_dispatch_us".into(),
            self.reactor_dispatch_us.snapshot().json_summary(),
        );
        for stage in STAGES {
            obj.insert(stage.into(), self.merged_stage(stage).json_summary());
        }
        Json::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_stage_spans_shards() {
        let p = PipelineObs::new(2);
        p.shards[0].queue_wait_us.record(10);
        p.shards[1].queue_wait_us.record(1000);
        let m = p.merged_stage("queue_wait_us");
        assert_eq!(m.count, 2);
        assert_eq!(m.max, 1000);
    }

    #[test]
    fn stage_lookup_covers_all_names() {
        let s = ShardObs::default();
        for stage in STAGES {
            s.stage(stage).record(1);
        }
        let j = s.stages_json();
        for stage in STAGES {
            assert_eq!(
                j.get(stage)
                    .and_then(|v| v.get("count"))
                    .and_then(|v| v.as_u64()),
                Some(1),
                "{stage}"
            );
        }
    }

    #[test]
    fn merged_stages_json_includes_connection_plane() {
        let p = PipelineObs::new(1);
        p.decode_us.record(7);
        p.reactor_dispatch_us.record(9);
        let j = p.merged_stages_json();
        for key in ["admit_us", "decode_us", "reactor_dispatch_us"] {
            assert!(j.get(key).is_some(), "{key}");
        }
        assert_eq!(
            j.get("decode_us")
                .and_then(|v| v.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn engine_gauges_round_trip() {
        let g = EngineGauges::default();
        let c = EngineCounters {
            events: 5,
            late_dropped: 2,
            ttl_expired: 1,
            ..Default::default()
        };
        g.store(&c);
        assert_eq!(g.load(), c);
    }

    #[test]
    fn queue_depth_tracks_hwm() {
        let s = ShardObs::default();
        s.observe_queue_depth(3);
        s.observe_queue_depth(9);
        s.observe_queue_depth(1);
        assert_eq!(s.queue_depth.load(Ordering::Relaxed), 1);
        assert_eq!(s.queue_hwm.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn gauges_json_has_all_keys() {
        let s = ShardObs::default();
        let j = s.gauges_json();
        for key in [
            "queue_depth",
            "queue_hwm",
            "reorder_depth",
            "watermark_lag_ms",
            "held_acks",
            "wal_segment_bytes",
            "wal_gen",
            "wal_oldest_gen",
            "wal_segments",
            "repl_lag_bytes",
            "state_facts",
        ] {
            assert!(j.get(key).is_some(), "{key}");
        }
    }

    #[test]
    fn repl_obs_json_reports_role_and_counters() {
        let r = ReplObs::default();
        let j = r.json();
        assert_eq!(j.get("role").and_then(|v| v.as_str()), Some("leader"));
        r.following.store(1, Ordering::Relaxed);
        r.epoch.store(3, Ordering::Relaxed);
        r.ship_bytes.store(1024, Ordering::Relaxed);
        r.ack_lag_us.record(500);
        r.sync_acks_ok.store(4, Ordering::Relaxed);
        r.sync_wait_us.record(250);
        let j = r.json();
        assert_eq!(j.get("role").and_then(|v| v.as_str()), Some("follower"));
        assert_eq!(j.get("epoch").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(j.get("ship_bytes").and_then(|v| v.as_u64()), Some(1024));
        assert_eq!(
            j.get("ack_lag_us")
                .and_then(|v| v.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(j.get("sync_acks_ok").and_then(|v| v.as_u64()), Some(4));
        for key in ["sync_acks_timeout", "sync_acks_fallback", "sync_waiting"] {
            assert_eq!(j.get(key).and_then(|v| v.as_u64()), Some(0), "{key}");
        }
        assert_eq!(
            j.get("sync_wait_us")
                .and_then(|v| v.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }
}
