//! Engine configuration.

use fenestra_base::time::Duration;
use fenestra_stream::watermark::WatermarkPolicy;

/// Interaction semantics between the state management component and
/// the stream processing component (paper §3.3, open question 3).
///
/// The distinction is observable through stream–state operators that
/// read the *live* state (`TimeRef::Current`) and through the relative
/// order of rule side effects and stream outputs; operators probing
/// `TimeRef::EventTime` see the timestamp-synchronized state under
/// every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Semantics {
    /// For each event: state rules fire first, then the stream
    /// component processes the event (it sees the post-transition
    /// state). The default, and the paper's implied reading —
    /// "a new event … invalidates previous information and adds a new
    /// state element" before results are produced.
    #[default]
    StateFirst,
    /// For each event: the stream component runs first against the
    /// pre-transition state, then the rules update state.
    StreamFirst,
    /// Batch-consistent: events buffer until the watermark advances;
    /// then all state rules for the batch run, then all stream
    /// processing. Stream rules see a state snapshot aligned to the
    /// watermark rather than to individual events.
    Snapshot,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Interaction semantics.
    pub semantics: Semantics,
    /// Bounded out-of-orderness: events are reordered within this
    /// lateness bound and dropped (counted) beyond it.
    pub max_lateness: Duration,
    /// Re-run the reasoner after every event that changed state
    /// (maintaining derived facts in the store). Leave off when no
    /// ontology is set.
    pub auto_reason: bool,
    /// Keep closed history for at least this long behind the
    /// watermark; older closed facts are garbage-collected as the
    /// watermark advances. `None` (default) retains history forever.
    pub retention: Option<Duration>,
    /// Journal mutations in the store's in-memory WAL (the source for
    /// snapshots, forks, and the durable log). On by default; turn off
    /// only for throughput benchmarks that measure the engine without
    /// any durability path — with journaling off, snapshots are empty
    /// and [`crate::Engine::take_journal`] always returns nothing.
    pub journal: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            semantics: Semantics::StateFirst,
            max_lateness: Duration::ZERO,
            auto_reason: false,
            retention: None,
            journal: true,
        }
    }
}

impl EngineConfig {
    /// The watermark policy implied by the lateness bound.
    pub fn watermark_policy(&self) -> WatermarkPolicy {
        WatermarkPolicy::bounded(self.max_lateness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = EngineConfig::default();
        assert_eq!(c.semantics, Semantics::StateFirst);
        assert_eq!(c.max_lateness, Duration::ZERO);
        assert!(!c.auto_reason);
        assert!(c.retention.is_none());
        assert!(c.journal, "journaling is on unless explicitly disabled");
        assert_eq!(c.watermark_policy(), WatermarkPolicy::strict());
    }
}
