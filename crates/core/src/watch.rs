//! Standing state queries (subscriptions).
//!
//! The paper's "queryable state" (§3.2) extends naturally to
//! *subscribable* state: a registered watch re-evaluates its query
//! whenever the state repository changes and publishes the row-level
//! differences as events — a stream of view updates that the dataflow
//! (or an external consumer) can react to.
//!
//! Maintenance is re-evaluate-and-diff, gated on the store's revision
//! counter (no re-evaluation while the state is untouched). This is
//! deliberate: exact incremental view maintenance for conjunctive
//! queries is the reasoner's territory (see `fenestra-reason`), while
//! watches favor predictability — the diff semantics are trivially
//! correct for any query the engine can run.

use fenestra_base::record::Record;
use fenestra_base::symbol::Symbol;
use fenestra_base::value::Value;
use fenestra_query::{Bindings, CachedPlan, PlanOutput, Query, QueryOptions};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A registered standing query: a long-lived compiled plan plus the
/// view rows of its last evaluation. Watches of the same statement
/// share one [`CachedPlan`] (the plan cache hands out `Arc`s), so a
/// thousand identical subscriptions compile once and carry one plan.
pub struct Watch {
    /// Subscription name; published events carry it in the `watch`
    /// field and arrive on the engine's watch stream.
    pub name: Symbol,
    /// The compiled plan (its temporal qualifier is evaluated as
    /// written, so `current` queries track the live state).
    pub plan: Arc<CachedPlan>,
    /// Store revision at the last evaluation.
    pub last_revision: u64,
    /// Rows at the last evaluation.
    pub last_rows: BTreeSet<Bindings>,
}

/// One change to a watched view.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchDelta {
    /// The subscription.
    pub watch: Symbol,
    /// `+1` for a row entering the view, `-1` for a row leaving it.
    pub sign: i64,
    /// The row.
    pub row: Bindings,
}

impl Watch {
    /// Create a watch over a programmatic `query` (compiles it into a
    /// private plan).
    pub fn new(name: impl Into<Symbol>, query: Query) -> Watch {
        Watch::from_plan(name, Arc::new(CachedPlan::from_query(query)))
    }

    /// Create a watch sharing an already-compiled plan. The plan must
    /// be watchable ([`CachedPlan::is_watchable`]); history plans have
    /// no row view to diff.
    pub fn from_plan(name: impl Into<Symbol>, plan: Arc<CachedPlan>) -> Watch {
        debug_assert!(plan.is_watchable(), "history plans cannot be watched");
        Watch {
            name: name.into(),
            plan,
            last_revision: u64::MAX, // force first evaluation
            last_rows: BTreeSet::new(),
        }
    }

    /// Re-evaluate against the store if its revision moved; returns the
    /// row deltas since the previous evaluation.
    pub fn poll(&mut self, store: &fenestra_temporal::TemporalStore) -> Vec<WatchDelta> {
        let rev = store.revision();
        if self.last_revision == rev {
            return Vec::new();
        }
        self.last_revision = rev;
        let rows: BTreeSet<Bindings> = match self.plan.execute(store, QueryOptions::default()) {
            Ok(PlanOutput::Rows(rows)) => rows.into_iter().collect(),
            // Query errors (e.g. type errors against evolving data)
            // leave the view unchanged; history output can't happen
            // (rejected at registration).
            Ok(PlanOutput::History(_)) | Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        for gone in self.last_rows.difference(&rows) {
            out.push(WatchDelta {
                watch: self.name,
                sign: -1,
                row: gone.clone(),
            });
        }
        for new in rows.difference(&self.last_rows) {
            out.push(WatchDelta {
                watch: self.name,
                sign: 1,
                row: new.clone(),
            });
        }
        self.last_rows = rows;
        out
    }
}

/// Render a delta as an event record: the row's variables become
/// fields, plus `watch` and `sign`.
pub fn delta_record(d: &WatchDelta) -> Record {
    let mut rec = Record::new();
    for (name, v) in &d.row {
        rec.set(*name, *v);
    }
    rec.set("watch", Value::Str(d.watch));
    rec.set("sign", Value::Int(d.sign));
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::time::Timestamp;
    use fenestra_query::Term;
    use fenestra_temporal::{AttrSchema, TemporalStore};

    fn active_query() -> Query {
        Query::new().pattern(Term::var("u"), "status", Term::val("active"))
    }

    #[test]
    fn first_poll_emits_initial_rows() {
        let mut s = TemporalStore::new();
        s.declare_attr("status", AttrSchema::one());
        let a = s.named_entity("a");
        s.replace_at(a, "status", "active", Timestamp::new(1))
            .unwrap();
        let mut w = Watch::new("actives", active_query());
        let deltas = w.poll(&s);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].sign, 1);
    }

    #[test]
    fn unchanged_revision_is_free() {
        let mut s = TemporalStore::new();
        let a = s.named_entity("a");
        s.assert_at(a, "status", "active", Timestamp::new(1))
            .unwrap();
        let mut w = Watch::new("actives", active_query());
        assert_eq!(w.poll(&s).len(), 1);
        assert!(w.poll(&s).is_empty(), "no revision change, no work");
    }

    #[test]
    fn deltas_track_enter_and_leave() {
        let mut s = TemporalStore::new();
        s.declare_attr("status", AttrSchema::one());
        let a = s.named_entity("a");
        let b = s.named_entity("b");
        let mut w = Watch::new("actives", active_query());
        s.replace_at(a, "status", "active", Timestamp::new(1))
            .unwrap();
        assert_eq!(w.poll(&s).len(), 1);
        s.replace_at(b, "status", "active", Timestamp::new(2))
            .unwrap();
        s.replace_at(a, "status", "idle", Timestamp::new(2))
            .unwrap();
        let deltas = w.poll(&s);
        assert_eq!(deltas.len(), 2, "a left, b entered");
        let signs: Vec<i64> = deltas.iter().map(|d| d.sign).collect();
        assert!(signs.contains(&1) && signs.contains(&-1));
    }

    #[test]
    fn delta_record_shape() {
        let d = WatchDelta {
            watch: Symbol::intern("w"),
            sign: -1,
            row: vec![(Symbol::intern("u"), Value::str("alice"))],
        };
        let rec = delta_record(&d);
        assert_eq!(rec.get("u"), Some(&Value::str("alice")));
        assert_eq!(rec.get("watch"), Some(&Value::str("w")));
        assert_eq!(rec.get("sign"), Some(&Value::Int(-1)));
    }
}
