//! Keyed state partitions: N engines behind one facade.
//!
//! [`ShardedEngine`] owns N independent [`Engine`]s and routes every
//! event to exactly one of them by a deterministic hash of the event's
//! *entity key* — the field its stream's rules use to name the entity
//! they write. Because a routable rule touches only the entity named
//! by that field, all state for one entity lives on one shard, queries
//! can fan out and merge, and each shard can persist/recover its
//! partition independently (see `fenestra_temporal::wal_file`).
//!
//! Rules whose matches can cross entities — pattern triggers, fixed
//! [`EntityRef::Named`] targets, computed entity expressions, or two
//! rules keying the same stream by different fields — are **rejected**
//! at registration time with a diagnostic when `shards > 1`. Run with
//! one shard to use them; with `shards == 1` the facade is a passthrough
//! and behaves exactly like a bare [`Engine`].

use crate::config::EngineConfig;
use crate::engine::{Engine, QueryResult};
use crate::metrics::EngineMetrics;
use fenestra_base::error::{Error, Result};
use fenestra_base::expr::Expr;
use fenestra_base::record::{Event, StreamId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use fenestra_query::{PhysicalPlan, Query, QueryOptions};
use fenestra_rules::rule::{Action, EntityRef, Guard, Trigger};
use fenestra_rules::StateRule;
use fenestra_temporal::AttrSchema;
use std::collections::HashMap;

/// Default shard count for servers: one per core, capped at 8 (beyond
/// that the WAL fsync path, not the engine, is the bottleneck).
pub fn default_shards() -> u32 {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);
    cores.clamp(1, 8)
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit over a byte stream. Chosen over `DefaultHasher`
/// because the mapping key→shard is **persistent**: shard-addressed
/// WAL segments on disk must route the same way after every restart
/// and across versions, so the hash must be fixed, not
/// implementation-defined.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash a value by *content* (never by interned symbol id, which
/// depends on interning order and would differ across processes).
fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => fnv1a(*b"n"),
        Value::Bool(b) => fnv1a([b'b', *b as u8]),
        Value::Int(i) => fnv1a(b"i".iter().copied().chain(i.to_le_bytes())),
        Value::Float(f) => {
            let bits = if f.is_nan() {
                f64::NAN.to_bits()
            } else if *f == 0.0 {
                0u64 // -0.0 == 0.0
            } else {
                f.to_bits()
            };
            fnv1a(b"f".iter().copied().chain(bits.to_le_bytes()))
        }
        Value::Str(s) => fnv1a(b"s".iter().copied().chain(s.as_str().bytes())),
        Value::Id(id) => fnv1a(b"d".iter().copied().chain(id.0.to_le_bytes())),
        Value::Time(t) => fnv1a(b"t".iter().copied().chain(t.millis().to_le_bytes())),
    }
}

/// Decides which shard an event belongs to.
///
/// The router learns one *routing field* per stream from the rules
/// registered against it ([`ShardRouter::observe_rule`]): the event
/// field every rule on that stream uses to name its entity. Events on
/// a routed stream hash that field's value; events on streams no rule
/// keys (or missing the field — the rule errors identically on any
/// shard) hash the stream name, so they still land deterministically.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: u32,
    /// stream → the field its rules key entities by.
    keys: HashMap<StreamId, Symbol>,
}

impl ShardRouter {
    /// A router over `shards` partitions.
    pub fn new(shards: u32) -> ShardRouter {
        ShardRouter {
            shards: shards.max(1),
            keys: HashMap::new(),
        }
    }

    /// Number of partitions.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Learn (and validate) a rule's routing implications. With more
    /// than one shard, every entity the rule touches must be named by
    /// one event field, consistent across all rules on the stream;
    /// anything that could make a rule's matches span entities on
    /// different shards is rejected with a diagnostic.
    pub fn observe_rule(&mut self, rule: &StateRule) -> Result<()> {
        if self.shards <= 1 {
            return Ok(());
        }
        let stream = match &rule.trigger {
            Trigger::Event { stream, .. } => *stream,
            Trigger::Pattern(_) => {
                return Err(Error::Invalid(format!(
                    "rule `{}` uses a pattern trigger; pattern matches can span \
                     entities on different shards and cannot be partitioned — \
                     run with --shards 1 to use pattern rules",
                    rule.name
                )));
            }
        };
        let mut field: Option<Symbol> = None;
        let mut observe = |entity: &EntityRef| -> Result<()> {
            let f = match entity {
                EntityRef::Expr(Expr::Name(f)) => *f,
                EntityRef::Named(n) => {
                    return Err(Error::Invalid(format!(
                        "rule `{}` targets the fixed entity `{}`; events from every \
                         shard would write to it — run with --shards 1, or key the \
                         entity by an event field",
                        rule.name, n
                    )));
                }
                EntityRef::Expr(_) => {
                    return Err(Error::Invalid(format!(
                        "rule `{}` names its entity with a computed expression; \
                         routing needs a plain event field (e.g. `$(user)`) — run \
                         with --shards 1 to use computed entity names",
                        rule.name
                    )));
                }
            };
            match field {
                None => field = Some(f),
                Some(prev) if prev != f => {
                    return Err(Error::Invalid(format!(
                        "rule `{}` touches entities keyed by both `{}` and `{}`; \
                         they may live on different shards — run with --shards 1 \
                         or split the rule per key",
                        rule.name, prev, f
                    )));
                }
                Some(_) => {}
            }
            Ok(())
        };
        for g in &rule.guards {
            match g {
                Guard::StateEquals { entity, .. }
                | Guard::StateExists { entity, .. }
                | Guard::StateAbsent { entity, .. } => observe(entity)?,
                Guard::Expr(_) => {}
            }
        }
        for a in &rule.actions {
            match a {
                Action::Assert { entity, .. }
                | Action::Retract { entity, .. }
                | Action::Replace { entity, .. }
                | Action::RetractEntity { entity } => observe(entity)?,
            }
        }
        let Some(f) = field else {
            // No state touched: the rule can fire wherever its events
            // land; it constrains nothing.
            return Ok(());
        };
        match self.keys.get(&stream) {
            None => {
                self.keys.insert(stream, f);
            }
            Some(prev) if *prev != f => {
                return Err(Error::Invalid(format!(
                    "rule `{}` keys stream `{}` by `{}`, but an earlier rule keys \
                     it by `{}`; one stream routes by one field — run with \
                     --shards 1 or align the rules on one key",
                    rule.name, stream, f, prev
                )));
            }
            Some(_) => {}
        }
        Ok(())
    }

    /// The shard `ev` belongs to.
    pub fn route(&self, ev: &Event) -> u32 {
        if self.shards <= 1 {
            return 0;
        }
        let h = match self.keys.get(&ev.stream).and_then(|f| ev.record.get(*f)) {
            Some(key) => hash_value(key),
            // Unrouted stream, or the key field is absent (the rule
            // will error identically wherever the event lands): spread
            // by stream name, still deterministically.
            None => fnv1a(b"s".iter().copied().chain(ev.stream.as_str().bytes())),
        };
        (h % self.shards as u64) as u32
    }
}

// ---------------------------------------------------------------------------
// The sharded engine
// ---------------------------------------------------------------------------

/// N keyed [`Engine`] partitions behind the single-engine surface.
///
/// Setup calls (`declare_attr`, `add_rule`, `watch`, …) fan out to
/// every shard; events route to exactly one shard by entity key;
/// queries fan out and merge. With `shards == 1` every call is a plain
/// delegation, so behavior — including query byte-for-byte output and
/// on-disk state — is identical to an unsharded [`Engine`].
pub struct ShardedEngine {
    router: ShardRouter,
    shards: Vec<Engine>,
}

impl ShardedEngine {
    /// `n` engines with identical configuration (`n == 0` is clamped
    /// to 1).
    pub fn new(config: EngineConfig, n: u32) -> ShardedEngine {
        let n = n.max(1);
        ShardedEngine {
            router: ShardRouter::new(n),
            shards: (0..n).map(|_| Engine::new(config)).collect(),
        }
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The router (for callers that split batches themselves, e.g. the
    /// server's connection threads).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// One partition, read-only.
    pub fn shard(&self, i: u32) -> &Engine {
        &self.shards[i as usize]
    }

    /// One partition, mutable (the server's per-shard threads each own
    /// one engine; this accessor serves tests and single-threaded use).
    pub fn shard_mut(&mut self, i: u32) -> &mut Engine {
        &mut self.shards[i as usize]
    }

    /// Tear the facade apart into its router and engines (the server
    /// moves each engine onto its own thread).
    pub fn into_parts(self) -> (ShardRouter, Vec<Engine>) {
        (self.router, self.shards)
    }

    // ----- setup (fan-out) --------------------------------------------------

    /// Declare an attribute on every shard.
    pub fn declare_attr(&mut self, attr: impl Into<Symbol>, schema: AttrSchema) {
        let attr = attr.into();
        for s in &mut self.shards {
            s.declare_attr(attr, schema);
        }
    }

    /// Register a rule on every shard. With `shards > 1` the rule must
    /// be routable (see [`ShardRouter::observe_rule`]).
    pub fn add_rule(&mut self, rule: StateRule) -> Result<()> {
        self.router.observe_rule(&rule)?;
        for s in &mut self.shards {
            s.add_rule(rule.clone())?;
        }
        Ok(())
    }

    /// Parse and register DSL rules on every shard.
    pub fn add_rules_text(&mut self, src: &str) -> Result<usize> {
        let rules = fenestra_rules::dsl::parse_rules(src)?;
        let n = rules.len();
        for r in rules {
            self.add_rule(r)?;
        }
        Ok(n)
    }

    /// Register a standing query on every shard; each shard publishes
    /// deltas for its partition of the rows.
    pub fn watch(
        &mut self,
        name: impl Into<Symbol>,
        query_text: &str,
        stream: impl Into<Symbol>,
    ) -> Result<()> {
        let name = name.into();
        let stream = stream.into();
        for s in &mut self.shards {
            s.watch(name, query_text, stream)?;
        }
        Ok(())
    }

    // ----- runtime ----------------------------------------------------------

    /// Route one event to its shard. Returns `false` if dropped late.
    pub fn push(&mut self, ev: Event) -> bool {
        let shard = self.router.route(&ev);
        self.shards[shard as usize].push(ev)
    }

    /// Split a batch by route (preserving arrival order within each
    /// shard) and push each piece. Returns events dropped as late.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = Event>) -> u64 {
        if self.shards.len() == 1 {
            return self.shards[0].push_batch(events);
        }
        let mut parts: Vec<Vec<Event>> = vec![Vec::new(); self.shards.len()];
        for ev in events {
            parts[self.router.route(&ev) as usize].push(ev);
        }
        let mut late = 0;
        for (s, part) in self.shards.iter_mut().zip(parts) {
            if !part.is_empty() {
                late += s.push_batch(part);
            }
        }
        late
    }

    /// Flush every shard's reorder buffer.
    pub fn finish(&mut self) {
        for s in &mut self.shards {
            s.finish();
        }
    }

    /// GC every shard; returns total facts reclaimed.
    pub fn gc(&mut self, horizon: Timestamp) -> usize {
        self.shards.iter_mut().map(|s| s.gc(horizon)).sum()
    }

    /// Drain every shard's journal, concatenated in shard order. (The
    /// server drains shards individually into per-shard WALs instead.)
    pub fn take_journal(&mut self) -> Vec<fenestra_temporal::WalOp> {
        self.shards
            .iter_mut()
            .flat_map(|s| s.take_journal())
            .collect()
    }

    /// The oldest buffered timestamp across all shards (`None` when
    /// every shard's reorder buffer is empty).
    pub fn buffered_low_ts(&self) -> Option<Timestamp> {
        self.shards.iter().filter_map(|s| s.buffered_low_ts()).min()
    }

    // ----- persistence ------------------------------------------------------

    /// Save every shard's state. With one shard this writes the legacy
    /// single-file snapshot at `path`; with N it writes
    /// `path.shard{i}` files stamped with their shard identity, which
    /// [`ShardedEngine::load_state`] validates on the way back in.
    pub fn save_state(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let path = path.as_ref();
        if self.shards.len() == 1 {
            return self.shards[0].save_state(path);
        }
        let n = self.shards.len() as u32;
        for (i, s) in self.shards.iter().enumerate() {
            fenestra_temporal::persist::save_compact_sharded(
                &s.store(),
                fenestra_temporal::wal_file::shard_snapshot_path(path, i as u32),
                0,
                i as u32,
                n,
            )?;
        }
        Ok(())
    }

    /// Load state saved by [`ShardedEngine::save_state`] with the same
    /// shard count. Fails before touching any shard if a snapshot
    /// belongs to a different partition layout.
    pub fn load_state(&mut self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let path = path.as_ref();
        if self.shards.len() == 1 {
            return self.shards[0].load_state(path);
        }
        let n = self.shards.len() as u32;
        let mut loaded = Vec::with_capacity(self.shards.len());
        for i in 0..n {
            let shard_path = fenestra_temporal::wal_file::shard_snapshot_path(path, i);
            let snap = fenestra_temporal::persist::load_with_meta(&shard_path)?;
            if snap.shard != Some(i) || snap.shard_count != Some(n) {
                return Err(Error::Invalid(format!(
                    "snapshot {} belongs to shard {:?} of {:?}, expected shard {} of {}; \
                     restart with the shard count that wrote it",
                    shard_path.display(),
                    snap.shard,
                    snap.shard_count,
                    i,
                    n
                )));
            }
            loaded.push(snap.store);
        }
        for (s, store) in self.shards.iter_mut().zip(loaded) {
            s.restore_state(store)?;
        }
        Ok(())
    }

    // ----- queries ----------------------------------------------------------

    /// Execute a textual query, fanning out across shards and merging.
    pub fn query(&self, src: &str) -> Result<QueryResult> {
        self.query_with(src, QueryOptions::default())
    }

    /// Execute a textual query with options: compile to a plan, then
    /// run it through [`ShardedEngine::execute_plan`] — plans are the
    /// only query path.
    pub fn query_with(&self, src: &str, opts: QueryOptions) -> Result<QueryResult> {
        let plan = fenestra_query::compile(src)?;
        self.execute_plan(&plan, opts)
    }

    /// Execute a compiled plan across the shards.
    ///
    /// With one shard this is a plain delegation (byte-identical
    /// results). With N, select plans run on every shard with
    /// `limit`/`count` stripped, entity ids are resolved to names
    /// (ids are shard-local and would collide), and the merged rows
    /// are re-sorted, deduplicated, and re-limited/counted; history
    /// plans merge every shard's spans for the entity name by
    /// `(validity start, shard, seq)` (see [`merge_history`]); window
    /// plans collect facts per shard and aggregate the merged batch.
    pub fn execute_plan(
        &self,
        plan: &fenestra_query::CachedPlan,
        opts: QueryOptions,
    ) -> Result<QueryResult> {
        if self.shards.len() == 1 {
            return self.shards[0].execute_plan(plan, opts);
        }
        match &plan.physical {
            PhysicalPlan::Select { query } => Ok(QueryResult::Rows(merge_select(
                query,
                opts,
                self.shards.iter().map(|s| s.store()),
            )?)),
            PhysicalPlan::History { entity, attr } => {
                let mut parts = Vec::new();
                for s in &self.shards {
                    let store = s.store();
                    if let Some(e) = store.lookup_entity(*entity) {
                        parts.push(store.history(e, *attr));
                    }
                }
                if parts.is_empty() {
                    return Err(Error::Invalid(format!("unknown entity `{entity}`")));
                }
                Ok(QueryResult::History(merge_history(parts)))
            }
            PhysicalPlan::WindowAgg(w) => {
                let batches = self
                    .shards
                    .iter()
                    .map(|s| w.collect_facts(&s.store()))
                    .collect::<Result<Vec<_>>>()?;
                Ok(QueryResult::Rows(w.aggregate(
                    fenestra_query::WindowPhys::merge_fact_batches(batches),
                )?))
            }
        }
    }

    // ----- introspection ----------------------------------------------------

    /// Counters summed across shards.
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = EngineMetrics::default();
        for s in &self.shards {
            m.merge(&s.metrics());
        }
        m
    }

    /// Each shard's own counters, in shard order.
    pub fn per_shard_metrics(&self) -> Vec<EngineMetrics> {
        self.shards.iter().map(|s| s.metrics()).collect()
    }

    /// Number of registered rules (identical on every shard).
    pub fn rule_count(&self) -> usize {
        self.shards[0].rule_count()
    }
}

/// One shard's contribution to a fanned-out select: run the query with
/// `limit`/`count` stripped (a shard's top-k is not the global top-k)
/// and shard-local entity ids resolved to their names (ids collide
/// across shards; names don't). The caller merges with [`merge_rows`].
pub fn partial_select(
    store: &fenestra_temporal::TemporalStore,
    q: &Query,
    opts: QueryOptions,
) -> Result<Vec<fenestra_query::Bindings>> {
    let mut inner = q.clone();
    inner.count_only = false;
    inner.limit = None;
    let mut rows = fenestra_query::exec::execute_with(store, &inner, opts)?;
    for row in &mut rows {
        for (_, v) in row.iter_mut() {
            if let Value::Id(e) = v {
                if let Some(name) = store.entity_name(*e) {
                    *v = Value::Str(name);
                }
            }
        }
    }
    Ok(rows)
}

/// Merge [`partial_select`] results: sort + dedup globally, then
/// re-apply the original query's `limit` and `count` — the same tail
/// `execute_with` applies per store.
pub fn merge_rows(
    q: &Query,
    parts: impl IntoIterator<Item = Vec<fenestra_query::Bindings>>,
) -> Vec<fenestra_query::Bindings> {
    let mut rows: Vec<fenestra_query::Bindings> = parts.into_iter().flatten().collect();
    rows.sort();
    rows.dedup();
    if let Some(n) = q.limit {
        rows.truncate(n);
    }
    if q.count_only {
        return vec![vec![(
            Symbol::intern("count"),
            Value::Int(rows.len() as i64),
        )]];
    }
    rows
}

/// Merge per-shard history timelines for one `(entity, attribute)`
/// into a single timeline ordered by validity start, with a
/// deterministic tiebreak: spans starting at the same instant keep
/// `(shard id, per-shard seq)` order. The sort is stable and `parts`
/// arrives in shard order with each shard's spans already in validity
/// order, so stability *is* the tiebreak.
pub fn merge_history(
    parts: Vec<
        Vec<(
            fenestra_base::time::Interval,
            Value,
            fenestra_temporal::Provenance,
        )>,
    >,
) -> Vec<(
    fenestra_base::time::Interval,
    Value,
    fenestra_temporal::Provenance,
)> {
    let mut all: Vec<_> = parts.into_iter().flatten().collect();
    all.sort_by_key(|(interval, _, _)| interval.start);
    all
}

/// Run a select on every shard's store and merge.
pub fn merge_select(
    q: &Query,
    opts: QueryOptions,
    stores: impl Iterator<Item = impl std::ops::Deref<Target = fenestra_temporal::TemporalStore>>,
) -> Result<Vec<fenestra_query::Bindings>> {
    let parts = stores
        .map(|store| partial_select(&store, q, opts))
        .collect::<Result<Vec<_>>>()?;
    Ok(merge_rows(q, parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::record::Event;

    fn ev(ts: u64, visitor: &str, room: &str) -> Event {
        Event::from_pairs(
            "moves",
            ts,
            [("visitor", Value::str(visitor)), ("room", Value::str(room))],
        )
    }

    const RULES: &str = "rule mv:\n  on moves\n  replace $(visitor).room = room\n";

    fn sharded(n: u32) -> ShardedEngine {
        let mut e = ShardedEngine::new(EngineConfig::default(), n);
        e.add_rules_text(RULES).unwrap();
        e
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        let e = sharded(4);
        let mut hit = [false; 4];
        for i in 0..64 {
            let a = e.router().route(&ev(1, &format!("v{i}"), "r"));
            let b = e.router().route(&ev(2, &format!("v{i}"), "q"));
            assert_eq!(a, b, "same key must route identically");
            hit[a as usize] = true;
        }
        assert!(hit.iter().all(|h| *h), "64 keys should cover 4 shards");
    }

    /// Resolve shard-local entity ids to names, the same normalization
    /// the sharded merge (and the wire layer) applies before rows
    /// leave the engine.
    fn resolved(e: &ShardedEngine, r: QueryResult) -> QueryResult {
        let QueryResult::Rows(mut rows) = r else {
            return r;
        };
        for row in &mut rows {
            for (_, v) in row.iter_mut() {
                if let Value::Id(id) = v {
                    if let Some(name) = e.shard(0).store().entity_name(*id) {
                        *v = Value::Str(name);
                    }
                }
            }
        }
        rows.sort();
        QueryResult::Rows(rows)
    }

    #[test]
    fn sharded_queries_match_a_single_engine() {
        let mut one = sharded(1);
        let mut four = sharded(4);
        for i in 0..40u64 {
            let e = ev(i, &format!("v{}", i % 10), &format!("r{}", i % 3));
            one.push(e.clone());
            four.push(e);
        }
        one.finish();
        four.finish();
        for q in [
            "select ?v ?r where { ?v room ?r }",
            "select ?v where { ?v room \"r1\" }",
            "select count ?v where { ?v room ?r }",
        ] {
            assert_eq!(
                resolved(&one, one.query(q).unwrap()),
                four.query(q).unwrap(),
                "query `{q}` diverged"
            );
        }
        // A limited query has the same rows once both sides are
        // resolved and re-sorted (the limit picks the same top-k only
        // in resolved order, which is what the sharded side returns).
        let lim = "select ?v ?r where { ?v room ?r } limit 3";
        assert_eq!(four.query(lim).unwrap().len(), 3);
        let h1 = one.query("history v3 room").unwrap();
        let h4 = four.query("history v3 room").unwrap();
        assert_eq!(h1, h4);
        assert_eq!(one.metrics().events, four.metrics().events);
        assert_eq!(one.metrics().transitions, four.metrics().transitions);
    }

    #[test]
    fn merge_history_orders_by_start_with_shard_seq_tiebreak() {
        use fenestra_base::time::Interval;
        use fenestra_temporal::Provenance;
        let span = |start: u64, end: Option<u64>, v: &str| {
            (
                Interval {
                    start: Timestamp::new(start),
                    end: end.map(Timestamp::new),
                },
                Value::str(v),
                Provenance::External,
            )
        };
        // Shard 0 and shard 1 both hold spans; starts interleave and
        // collide at t=20.
        let shard0 = vec![span(10, Some(20), "a"), span(20, Some(40), "b")];
        let shard1 = vec![span(5, Some(20), "x"), span(20, None, "y")];
        let merged = merge_history(vec![shard0, shard1]);
        let starts: Vec<u64> = merged.iter().map(|(iv, _, _)| iv.start.millis()).collect();
        assert_eq!(starts, vec![5, 10, 20, 20], "global validity order");
        // Equal starts keep (shard, seq) order: shard 0's span first.
        assert_eq!(merged[2].1, Value::str("b"));
        assert_eq!(merged[3].1, Value::str("y"));
        // Merging a single shard's timeline is the identity.
        let solo = vec![span(1, Some(2), "p"), span(2, None, "q")];
        assert_eq!(merge_history(vec![solo.clone()]), solo);
    }

    #[test]
    fn cross_entity_rules_are_rejected_with_a_diagnostic() {
        let mut e = ShardedEngine::new(EngineConfig::default(), 4);
        let err = e
            .add_rules_text("rule pin:\n  on moves\n  replace @lobby.last = visitor\n")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--shards 1"), "no remedy in: {msg}");
        assert!(msg.contains("pin"), "no rule name in: {msg}");

        let err = e
            .add_rules_text(
                "rule a:\n  on moves\n  replace $(visitor).room = room\n\
                 rule b:\n  on moves\n  replace $(room).occupant = visitor\n",
            )
            .unwrap_err();
        assert!(err.to_string().contains("one stream routes by one field"));

        // One shard accepts everything.
        let mut e1 = ShardedEngine::new(EngineConfig::default(), 1);
        e1.add_rules_text("rule pin:\n  on moves\n  replace @lobby.last = visitor\n")
            .unwrap();
    }

    #[test]
    fn save_and_load_round_trip_shard_headers() {
        let dir = std::env::temp_dir().join(format!("fen-shard-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("state.json");
        let mut e = sharded(4);
        for i in 0..20u64 {
            e.push(ev(i, &format!("v{i}"), "r"));
        }
        e.finish();
        e.save_state(&snap).unwrap();

        let mut back = sharded(4);
        back.load_state(&snap).unwrap();
        assert_eq!(
            e.query("select ?v ?r where { ?v room ?r }").unwrap(),
            back.query("select ?v ?r where { ?v room ?r }").unwrap()
        );

        // A different shard count must be refused, not mis-assembled.
        let mut wrong = sharded(2);
        let err = wrong.load_state(&snap).unwrap_err();
        assert!(err.to_string().contains("shard"), "bad error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_shards_is_bounded() {
        let n = default_shards();
        assert!((1..=8).contains(&n));
    }
}
