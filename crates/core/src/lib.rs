#![warn(missing_docs)]
//! # fenestra-core
//!
//! The integrated Fenestra engine — the architecture of the paper's
//! Figure 1, assembled from the substrate crates:
//!
//! ```text
//!                ┌───────────────────────────────┐
//!  input         │  state management component   │     ┌───────────┐
//!  streams ──┬──▶│  (fenestra-rules)             │────▶│   state   │
//!            │   └───────────────────────────────┘     │ repository│
//!            │   ┌───────────────────────────────┐     │(fenestra- │
//!            └──▶│  stream processing component  │◀───▶│ temporal) │
//!                │  (fenestra-stream)            │     └─────┬─────┘
//!                └──────────────┬────────────────┘           │
//!                               ▼                   ┌────────┴────────┐
//!                        output streams             │ queries (query) │
//!                                                   │ reasoning       │
//!                                                   │ (fenestra-      │
//!                                                   │  reason)        │
//!                                                   └─────────────────┘
//! ```
//!
//! The [`engine::Engine`] accepts events, reorders them up to a
//! bounded lateness, and for each event (in timestamp order) runs the
//! state-management rules and the stream-processing dataflow under a
//! configurable [`config::Semantics`] — the paper's open question 3
//! ("how a change in the state might impact on the ongoing streaming
//! computation") made into an explicit, testable knob. The reasoner
//! maintains derived facts in the store after every batch of
//! transitions, and one-time queries (textual or programmatic) read
//! current or historical state at any moment.

pub mod config;
pub mod engine;
pub mod metrics;
pub mod shard;
pub mod watch;

pub use config::{EngineConfig, Semantics};
pub use engine::{Engine, QueryResult};
pub use metrics::EngineMetrics;
pub use shard::{default_shards, ShardRouter, ShardedEngine};
pub use watch::{Watch, WatchDelta};
