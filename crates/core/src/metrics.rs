//! Engine-level counters.

/// Counters describing an engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Events accepted (on time or within the lateness bound).
    pub events: u64,
    /// Events dropped as late.
    pub late_dropped: u64,
    /// Rule firings whose actions ran.
    pub rule_fired: u64,
    /// State transitions applied.
    pub transitions: u64,
    /// Rule firings suppressed by guards.
    pub guard_blocked: u64,
    /// Rule evaluation / store errors.
    pub rule_errors: u64,
    /// Facts asserted by the reasoner.
    pub reason_asserted: u64,
    /// Facts retracted by the reasoner.
    pub reason_retracted: u64,
    /// Reasoner sync passes executed.
    pub reason_syncs: u64,
    /// Open facts expired by attribute TTLs.
    pub ttl_expired: u64,
}

impl EngineMetrics {
    /// Fold another engine's counters into this one (every field is a
    /// monotone sum, so shard metrics aggregate by addition).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.events += other.events;
        self.late_dropped += other.late_dropped;
        self.rule_fired += other.rule_fired;
        self.transitions += other.transitions;
        self.guard_blocked += other.guard_blocked;
        self.rule_errors += other.rule_errors;
        self.reason_asserted += other.reason_asserted;
        self.reason_retracted += other.reason_retracted;
        self.reason_syncs += other.reason_syncs;
        self.ttl_expired += other.ttl_expired;
    }

    /// Transitions per accepted event (state churn).
    pub fn transitions_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.transitions as f64 / self.events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn() {
        let m = EngineMetrics {
            events: 4,
            transitions: 2,
            ..Default::default()
        };
        assert!((m.transitions_per_event() - 0.5).abs() < 1e-12);
        assert_eq!(EngineMetrics::default().transitions_per_event(), 0.0);
    }
}
