//! The integrated engine.

use crate::config::{EngineConfig, Semantics};
use crate::metrics::EngineMetrics;
use fenestra_base::error::{Error, Result};
use fenestra_base::record::Event;
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Duration, Interval, Timestamp};
use fenestra_base::value::Value;
use fenestra_obs::{EngineCounters, ShardObs};
use fenestra_query::QueryOptions;
use fenestra_reason::store_sync::sync_store;
use fenestra_reason::Ontology;
use fenestra_rules::{RuleEngine, StateRule};
use fenestra_stream::executor::Executor;
use fenestra_stream::graph::Graph;
use fenestra_stream::ops::state::SharedStore;
use fenestra_stream::watermark::{WatermarkGenerator, WatermarkPolicy};
use fenestra_temporal::{AttrSchema, Provenance, TemporalStore};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard};
use std::time::Instant;

/// Result of [`Engine::query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Rows of variable bindings.
    Rows(Vec<fenestra_query::Bindings>),
    /// Timeline of one `(entity, attribute)`.
    History(Vec<(Interval, Value, Provenance)>),
}

impl QueryResult {
    /// The rows, if this is a select result.
    pub fn rows(&self) -> Option<&[fenestra_query::Bindings]> {
        match self {
            QueryResult::Rows(r) => Some(r),
            QueryResult::History(_) => None,
        }
    }

    /// Number of rows / timeline entries.
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Rows(r) => r.len(),
            QueryResult::History(h) => h.len(),
        }
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The Fenestra engine: state management + stream processing + state
/// repository + queries + reasoning, wired per Figure 1 of the paper.
pub struct Engine {
    config: EngineConfig,
    store: SharedStore,
    rules: RuleEngine,
    ontology: Option<Ontology>,
    executor: Option<Executor>,
    wm: WatermarkGenerator,
    /// Reorder buffer: (ts, seq) → (event, admission instant). The
    /// instant times reorder-buffer dwell when obs is attached.
    buffer: BTreeMap<(u64, u64), (Event, Instant)>,
    seq: u64,
    metrics: EngineMetrics,
    /// Horizon of the last retention GC pass.
    last_gc: Timestamp,
    /// Stream name on which applied transitions are republished.
    publish_transitions: Option<Symbol>,
    /// Standing queries, polled after each drained batch; deltas are
    /// published on the paired stream.
    watches: Vec<(crate::watch::Watch, Symbol)>,
    finished: bool,
    /// Optional per-shard observability (histograms + gauges).
    obs: Option<Arc<ShardObs>>,
}

impl Engine {
    /// An engine with the given configuration and an empty store.
    pub fn new(config: EngineConfig) -> Engine {
        let store = if config.journal {
            TemporalStore::new()
        } else {
            TemporalStore::without_wal()
        };
        Engine {
            config,
            store: Arc::new(RwLock::new(store)),
            rules: RuleEngine::new(),
            ontology: None,
            executor: None,
            wm: WatermarkGenerator::new(config.watermark_policy()),
            buffer: BTreeMap::new(),
            seq: 0,
            metrics: EngineMetrics::default(),
            last_gc: Timestamp::ZERO,
            publish_transitions: None,
            watches: Vec::new(),
            finished: false,
            obs: None,
        }
    }

    /// Attach per-shard observability: the engine will record
    /// reorder-buffer dwell and lateness margins into its histograms
    /// and republish counters/gauges after every batch. Recording is
    /// lock-free; attaching costs one `Instant::now()` per batch plus
    /// relaxed atomic stores.
    pub fn set_obs(&mut self, obs: Arc<ShardObs>) {
        self.obs = Some(obs);
    }

    /// Default-configured engine.
    pub fn with_defaults() -> Engine {
        Engine::new(EngineConfig::default())
    }

    // ----- setup ------------------------------------------------------------

    /// Declare an attribute on the state repository.
    pub fn declare_attr(&mut self, attr: impl Into<Symbol>, schema: AttrSchema) {
        self.store
            .write()
            .expect("store lock")
            .declare_attr(attr, schema);
    }

    /// Register a state-management rule.
    pub fn add_rule(&mut self, rule: StateRule) -> Result<()> {
        self.rules.add_rule(rule)
    }

    /// Parse and register rules from DSL text.
    pub fn add_rules_text(&mut self, src: &str) -> Result<usize> {
        let rules = fenestra_rules::dsl::parse_rules(src)?;
        let n = rules.len();
        for r in rules {
            self.rules.add_rule(r)?;
        }
        Ok(n)
    }

    /// Install the ontology (enable `auto_reason` in the config, or
    /// call [`Engine::reason_now`] manually).
    pub fn set_ontology(&mut self, ont: Ontology) {
        self.ontology = Some(ont);
    }

    /// Register a standing query: whenever the state changes, the
    /// query re-evaluates and row-level differences are published as
    /// events on `stream` (fields: the row's variables, plus `watch`
    /// and `sign` ∈ {+1, -1}). The query text follows the usual query
    /// language; `history` queries cannot be watched.
    pub fn watch(
        &mut self,
        name: impl Into<Symbol>,
        query_text: &str,
        stream: impl Into<Symbol>,
    ) -> Result<()> {
        let plan = std::sync::Arc::new(fenestra_query::compile(query_text)?);
        self.watch_plan(name, plan, stream)
    }

    /// Register a standing query from an already-compiled plan (the
    /// server's plan cache hands the same `Arc` to every watch of the
    /// same statement). History plans are rejected — they have no row
    /// view to diff.
    pub fn watch_plan(
        &mut self,
        name: impl Into<Symbol>,
        plan: std::sync::Arc<fenestra_query::CachedPlan>,
        stream: impl Into<Symbol>,
    ) -> Result<()> {
        if !plan.is_watchable() {
            return Err(Error::Invalid(
                "history queries cannot be watched; watch a select query".into(),
            ));
        }
        self.watches
            .push((crate::watch::Watch::from_plan(name, plan), stream.into()));
        Ok(())
    }

    /// Republish every applied state transition as an event on
    /// `stream`, so the dataflow can react to state *changes* (the
    /// paper's interoperability benefit: "stream processing systems can
    /// expose their state"). Events carry `entity` (name or id),
    /// `attr`, `value`, `op` (`assert`/`retract`/`replace`/`clear`),
    /// and `rule` fields, stamped at the transition time.
    pub fn publish_transitions(&mut self, stream: impl Into<Symbol>) {
        self.publish_transitions = Some(stream.into());
    }

    /// Install the stream-processing dataflow. Build state-aware
    /// operators against [`Engine::shared_store`].
    pub fn set_graph(&mut self, graph: Graph) -> Result<()> {
        // The engine delivers events to the executor already in
        // timestamp order, so the executor itself runs strict.
        self.executor = Some(Executor::try_with_policy(graph, WatermarkPolicy::strict())?);
        Ok(())
    }

    /// Handle to the shared state repository, for constructing
    /// `StateGate` / `StateEnrich` operators and for external readers.
    pub fn shared_store(&self) -> SharedStore {
        self.store.clone()
    }

    /// Read access to the state repository.
    pub fn store(&self) -> RwLockReadGuard<'_, TemporalStore> {
        self.store.read().expect("store lock")
    }

    // ----- runtime ----------------------------------------------------------

    /// Push one event. Returns `false` if it was dropped as late.
    pub fn push(&mut self, ev: Event) -> bool {
        self.push_batch(std::iter::once(ev)) == 0
    }

    /// Push a batch of events, draining the reorder buffer **once** for
    /// the whole batch instead of once per event. Returns the number of
    /// events dropped as late.
    ///
    /// State transitions are identical to pushing the same events one
    /// at a time: buffered events are still applied in timestamp order,
    /// TTL expirations still happen-before each event, and the
    /// watermark observes each event individually. What changes is
    /// watermark-batch granularity — the whole batch forms one
    /// [`Semantics::Snapshot`] batch, and engine watches fire once,
    /// stamped at the batch's final watermark.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = Event>) -> u64 {
        assert!(!self.finished, "push after finish()");
        let admitted = Instant::now();
        let mut late = 0u64;
        let mut advanced: Option<Timestamp> = None;
        for ev in events {
            let Some(advance) = self.wm.observe(ev.ts) else {
                // The watermark generator counts the drop
                // (wm.late_events); [`Engine::metrics`] reads it from
                // there. Counting here too would double it.
                late += 1;
                if let (Some(obs), Some(wm)) = (&self.obs, self.wm.current()) {
                    // How far behind the watermark the drop was: the
                    // lateness-margin histogram's count equals
                    // `late_dropped` by construction.
                    obs.late_margin_ms
                        .record(wm.millis().saturating_sub(ev.ts.millis()));
                }
                continue;
            };
            self.metrics.events += 1;
            self.buffer
                .insert((ev.ts.millis(), self.seq), (ev, admitted));
            self.seq += 1;
            if let Some(wm) = advance {
                // Watermarks are monotone: the latest advance is the max.
                advanced = Some(wm);
            }
        }
        if let Some(wm) = advanced {
            self.drain_until(wm);
            self.maybe_gc(wm);
        } else if let Some(wm) = self.wm.current() {
            // An event AT the watermark is admitted but advances
            // nothing. Nothing that could still arrive may sort before
            // it (anything earlier is late by definition), so drain it
            // now — otherwise it sits buffered until some later event
            // advances the watermark, which never happens if every
            // event carries the same timestamp, and held durable acks
            // would never release.
            self.drain_until(wm);
        }
        self.publish_obs();
        late
    }

    /// Push events one at a time (per-event watermark batches; use
    /// [`Engine::push_batch`] to amortize the drain across the batch).
    pub fn run(&mut self, events: impl IntoIterator<Item = Event>) {
        for ev in events {
            self.push(ev);
        }
    }

    /// End of input: process everything buffered and flush the stream
    /// component. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.drain_until(Timestamp::MAX);
        if let Some(ex) = &mut self.executor {
            ex.finish();
        }
        self.finished = true;
        self.publish_obs();
    }

    /// Republish counters and reorder/watermark gauges into the
    /// attached [`ShardObs`] (no-op without one). Relaxed stores only.
    fn publish_obs(&self) {
        let Some(obs) = &self.obs else {
            return;
        };
        let m = self.metrics();
        obs.engine.store(&EngineCounters {
            events: m.events,
            late_dropped: m.late_dropped,
            rule_fired: m.rule_fired,
            transitions: m.transitions,
            guard_blocked: m.guard_blocked,
            rule_errors: m.rule_errors,
            reason_asserted: m.reason_asserted,
            reason_retracted: m.reason_retracted,
            reason_syncs: m.reason_syncs,
            ttl_expired: m.ttl_expired,
        });
        use std::sync::atomic::Ordering::Relaxed;
        obs.reorder_depth.store(self.buffer.len() as u64, Relaxed);
        let lag = match (self.wm.max_seen(), self.wm.current()) {
            (Some(head), Some(wm)) => head.millis().saturating_sub(wm.millis()),
            _ => 0,
        };
        obs.watermark_lag_ms.store(lag, Relaxed);
    }

    fn drain_until(&mut self, wm: Timestamp) {
        let ready: Vec<(Event, Instant)> = {
            let keys: Vec<(u64, u64)> = self
                .buffer
                .range(..(wm.millis().saturating_add(1), 0))
                .map(|(k, _)| *k)
                .collect();
            keys.into_iter()
                .map(|k| self.buffer.remove(&k).expect("key present"))
                .collect()
        };
        if ready.is_empty() {
            return;
        }
        if let Some(obs) = &self.obs {
            // One clock read per drain, not per event.
            let drained = Instant::now();
            for (_, admitted) in &ready {
                obs.reorder_dwell_us
                    .record(drained.saturating_duration_since(*admitted).as_micros() as u64);
            }
        }
        let ready: Vec<Event> = ready.into_iter().map(|(ev, _)| ev).collect();
        match self.config.semantics {
            Semantics::StateFirst => {
                for ev in ready {
                    // TTL expirations up to this instant happen-before
                    // the event, in timestamp order.
                    self.expire_ttl(ev.ts);
                    self.apply_rules(&ev);
                    self.stream_push(ev);
                }
            }
            Semantics::StreamFirst => {
                let has_executor = self.executor.is_some();
                for ev in ready {
                    self.expire_ttl(ev.ts);
                    // Without an executor the push is a no-op; skip the
                    // clone it would otherwise cost on every event.
                    if has_executor {
                        self.stream_push(ev.clone());
                    }
                    self.apply_rules(&ev);
                }
            }
            Semantics::Snapshot => {
                for ev in &ready {
                    self.expire_ttl(ev.ts);
                    self.apply_rules(ev);
                }
                for ev in ready {
                    self.stream_push(ev);
                }
            }
        }
        self.poll_watches(wm);
    }

    fn poll_watches(&mut self, at: Timestamp) {
        if self.watches.is_empty() {
            return;
        }
        // The publication instant: watches fire with the batch that
        // changed the view. MAX (the flush watermark) is mapped back to
        // the last real transition time.
        let at = if at == Timestamp::MAX {
            self.store().last_transition()
        } else {
            at
        };
        let mut to_publish: Vec<(Symbol, Event)> = Vec::new();
        {
            let store = self.store.read().expect("store lock");
            for (w, stream) in &mut self.watches {
                for d in w.poll(&store) {
                    let rec = crate::watch::delta_record(&d);
                    to_publish.push((*stream, Event::new(*stream, at, rec)));
                }
            }
        }
        for (_, ev) in to_publish {
            self.stream_push(ev);
        }
    }

    fn apply_rules(&mut self, ev: &Event) {
        if self.rules.is_empty() {
            return;
        }
        let report = {
            let mut store = self.store.write().expect("store lock");
            self.rules.on_event(ev, &mut store)
        };
        self.metrics.rule_fired += report.fired;
        self.metrics.transitions += report.transitions;
        self.metrics.guard_blocked += report.guard_blocked;
        self.metrics.rule_errors += report.errors.len() as u64;
        if report.transitions > 0 && self.config.auto_reason {
            self.reason_at(ev.ts);
        }
        if let Some(stream) = self.publish_transitions {
            for tr in &report.applied {
                let entity_val = {
                    let store = self.store.read().expect("store lock");
                    store
                        .entity_name(tr.entity)
                        .map(Value::Str)
                        .unwrap_or(Value::Id(tr.entity))
                };
                let rec = fenestra_base::record::Record::from_pairs([
                    ("entity", entity_val),
                    ("attr", Value::Str(tr.attr)),
                    ("value", tr.value),
                    ("op", Value::str(tr.kind.name())),
                    ("rule", Value::Str(tr.rule)),
                ]);
                self.stream_push(Event::new(stream, tr.t, rec));
            }
        }
    }

    fn stream_push(&mut self, ev: Event) {
        if let Some(ex) = &mut self.executor {
            ex.push(ev);
        }
    }

    fn expire_ttl(&mut self, wm: Timestamp) {
        let expired = self.store.write().expect("store lock").expire_ttl(wm);
        if expired.is_empty() {
            return;
        }
        self.metrics.ttl_expired += expired.len() as u64;
        if let Some(stream) = self.publish_transitions {
            for (e, attr, v, at) in &expired {
                let entity_val = {
                    let store = self.store.read().expect("store lock");
                    store
                        .entity_name(*e)
                        .map(Value::Str)
                        .unwrap_or(Value::Id(*e))
                };
                let rec = fenestra_base::record::Record::from_pairs([
                    ("entity", entity_val),
                    ("attr", Value::Str(*attr)),
                    ("value", *v),
                    ("op", Value::str("expire")),
                ]);
                self.stream_push(Event::new(stream, *at, rec));
            }
        }
    }

    fn maybe_gc(&mut self, wm: Timestamp) {
        let Some(retention) = self.config.retention else {
            return;
        };
        let horizon = wm.saturating_sub(retention);
        // Amortize: run at most once per half-retention of progress.
        let step = Duration::millis((retention.as_millis() / 2).max(1));
        if horizon > self.last_gc.saturating_add(step) {
            self.last_gc = horizon;
            self.store.write().expect("store lock").gc(horizon);
        }
    }

    /// Reclaim closed history ending at or before `horizon` now
    /// (independent of the configured retention policy). Returns the
    /// number of facts reclaimed.
    pub fn gc(&mut self, horizon: Timestamp) -> usize {
        self.store.write().expect("store lock").gc(horizon)
    }

    /// Save a JSON snapshot of the state repository.
    pub fn save_state(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        fenestra_temporal::persist::save(&self.store(), path)
    }

    /// Save a *compact* JSON snapshot: the minimal op sequence for the
    /// current state rather than the full journal, stamped with the
    /// WAL generation that continues it. The checkpoint format of the
    /// durable-log path (see `fenestra_temporal::wal_file`), and the
    /// only correct one once [`Engine::take_journal`] drains the
    /// journal — [`Engine::save_state`] would then see only the
    /// undrained suffix.
    pub fn save_state_compact(
        &self,
        path: impl AsRef<std::path::Path>,
        wal_gen: u64,
    ) -> Result<()> {
        fenestra_temporal::persist::save_compact(&self.store(), path, wal_gen)
    }

    /// Replace the state repository with a snapshot loaded from disk
    /// (rules, graph, and ontology are untouched). Fails if events have
    /// already been processed.
    pub fn load_state(&mut self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let loaded = fenestra_temporal::persist::load(path)?;
        self.restore_state(loaded)
    }

    /// Install an already-built store (e.g. the output of crash
    /// recovery) as the state repository. Fails if events have already
    /// been processed.
    pub fn restore_state(&mut self, store: TemporalStore) -> Result<()> {
        if self.metrics.events > 0 {
            return Err(Error::Invalid(
                "restore_state must precede event processing".into(),
            ));
        }
        *self.store.write().expect("store lock") = store;
        Ok(())
    }

    /// Drain the store's in-memory journal: the mutations applied
    /// since the last drain, ready to append to a durable log. Calling
    /// this regularly is what keeps a long-running engine's memory
    /// bounded (the journal otherwise grows with every transition).
    pub fn take_journal(&mut self) -> Vec<fenestra_temporal::WalOp> {
        self.store.write().expect("store lock").take_journal()
    }

    /// Number of ops buffered in the store's in-memory journal.
    pub fn journal_len(&self) -> usize {
        self.store().journal_len()
    }

    /// Lowest timestamp still held in the reorder buffer — the oldest
    /// admitted event the watermark has not yet passed (`None` when the
    /// buffer is empty, i.e. everything admitted has been applied).
    /// Events at or above this timestamp have produced **no** journal
    /// ops yet; a durable-ack server uses this to know which acked
    /// frames a fsynced WAL frame actually covers.
    pub fn buffered_low_ts(&self) -> Option<Timestamp> {
        self.buffer.keys().next().map(|&(ts, _)| Timestamp::new(ts))
    }

    /// Number of events currently held in the reorder buffer.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// Run the reasoner now, maintaining derived facts at the given
    /// instant (defaults to the latest transition time).
    pub fn reason_now(&mut self) -> Result<(usize, usize)> {
        let t = self.store().last_transition();
        Ok(self.reason_at(t))
    }

    fn reason_at(&mut self, t: Timestamp) -> (usize, usize) {
        let Some(ont) = &self.ontology else {
            return (0, 0);
        };
        let mut store = self.store.write().expect("store lock");
        match sync_store(&mut store, ont, t) {
            Ok((a, r)) => {
                self.metrics.reason_asserted += a as u64;
                self.metrics.reason_retracted += r as u64;
                self.metrics.reason_syncs += 1;
                (a, r)
            }
            Err(_) => (0, 0),
        }
    }

    // ----- queries ----------------------------------------------------------

    /// Execute a textual query against the state repository.
    pub fn query(&self, src: &str) -> Result<QueryResult> {
        self.query_with(src, QueryOptions::default())
    }

    /// Execute a textual query with options. The statement — either
    /// dialect — compiles to a plan and runs through
    /// [`Engine::execute_plan`]: plans are the only query path.
    pub fn query_with(&self, src: &str, opts: QueryOptions) -> Result<QueryResult> {
        let plan = fenestra_query::compile(src)?;
        self.execute_plan(&plan, opts)
    }

    /// Execute a compiled plan against this engine's store.
    pub fn execute_plan(
        &self,
        plan: &fenestra_query::CachedPlan,
        opts: QueryOptions,
    ) -> Result<QueryResult> {
        let store = self.store();
        match plan.execute(&store, opts)? {
            fenestra_query::PlanOutput::Rows(rows) => Ok(QueryResult::Rows(rows)),
            fenestra_query::PlanOutput::History(spans) => Ok(QueryResult::History(spans)),
        }
    }

    // ----- introspection ----------------------------------------------------

    /// Engine counters.
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = self.metrics;
        m.late_dropped = self.wm.late_events;
        m
    }

    /// The stream executor's per-node counters (empty before
    /// [`Engine::set_graph`]).
    pub fn node_metrics(&self) -> Vec<(&'static str, u64, u64)> {
        self.executor
            .as_ref()
            .map(|e| e.node_metrics())
            .unwrap_or_default()
    }

    /// Number of registered rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The registered rules, in registration order (used by the
    /// sharding layer to derive routing keys after setup).
    pub fn state_rules(&self) -> Vec<&StateRule> {
        self.rules.rules().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::time::Duration;
    use fenestra_stream::aggregate::AggSpec;
    use fenestra_stream::ops::state::{StateGate, TimeRef};
    use fenestra_stream::window::time::TimeWindowOp;

    fn click(ts: u64, user: &str, action: &str) -> Event {
        Event::from_pairs(
            "clicks",
            ts,
            [("user", Value::str(user)), ("action", Value::str(action))],
        )
    }

    const SESSION_RULES: &str = r#"
        rule enter:
          on clicks where action == "enter"
          replace $(user).status = "active"

        rule leave:
          on clicks where action == "leave"
          if state($(user)).status == "active"
          retract $(user).status = "active"
    "#;

    #[test]
    fn rules_maintain_session_state() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr("status", AttrSchema::one());
        assert_eq!(eng.add_rules_text(SESSION_RULES).unwrap(), 2);
        eng.run([
            click(1, "u1", "enter"),
            click(2, "u2", "enter"),
            click(5, "u1", "leave"),
        ]);
        eng.finish();
        let res = eng
            .query("select ?u where { ?u status \"active\" }")
            .unwrap();
        assert_eq!(res.len(), 1, "only u2 still active");
        let hist = eng.query("history u1 status").unwrap();
        match hist {
            QueryResult::History(h) => {
                assert_eq!(h.len(), 1);
                assert_eq!(
                    h[0].0,
                    Interval::closed(Timestamp::new(1), Timestamp::new(5))
                );
            }
            other => panic!("{other:?}"),
        }
        let m = eng.metrics();
        assert_eq!(m.events, 3);
        assert_eq!(m.rule_fired, 3);
        assert_eq!(m.transitions, 3);
    }

    #[test]
    fn state_gated_stream_pipeline() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr("status", AttrSchema::one());
        eng.add_rules_text(SESSION_RULES).unwrap();
        let store = eng.shared_store();
        let mut g = Graph::new();
        let gate = g.add_op(StateGate::new(store, "user", "status", "active"));
        g.connect_source("clicks", gate);
        let win = g.add_op(
            TimeWindowOp::tumbling(Duration::millis(100))
                .group_by(["user"])
                .aggregate(AggSpec::count("n")),
        );
        g.connect(gate, win);
        let sink = g.add_sink();
        g.connect(win, sink.node);
        eng.set_graph(g).unwrap();

        eng.run([
            click(1, "u1", "enter"),
            click(2, "u1", "browse"),
            click(3, "u1", "browse"),
            click(4, "u1", "leave"),
            click(5, "u1", "browse"), // after leave: gated out
            click(120, "u2", "enter"),
        ]);
        eng.finish();
        let out = sink.take();
        // Window [0,100): u1 rows (enter+2 browses pass the gate; the
        // leave event fires after the rule retracts status, so it does
        // not pass under StateFirst).
        let u1_row = out
            .iter()
            .find(|e| e.get("user") == Some(&Value::str("u1")))
            .expect("u1 row");
        assert_eq!(u1_row.get("n"), Some(&Value::Int(3)));
    }

    #[test]
    fn semantics_state_first_vs_stream_first() {
        // An "enter" event: under StateFirst the gate (probing live
        // state) sees the user active; under StreamFirst it does not.
        let run = |sem: Semantics| -> usize {
            let mut eng = Engine::new(EngineConfig {
                semantics: sem,
                ..EngineConfig::default()
            });
            eng.declare_attr("status", AttrSchema::one());
            eng.add_rules_text(SESSION_RULES).unwrap();
            let store = eng.shared_store();
            let mut g = Graph::new();
            let gate = g.add_op(
                StateGate::new(store, "user", "status", "active").time_ref(TimeRef::Current),
            );
            g.connect_source("clicks", gate);
            let sink = g.add_sink();
            g.connect(gate, sink.node);
            eng.set_graph(g).unwrap();
            eng.push(click(1, "u1", "enter"));
            eng.finish();
            sink.len()
        };
        assert_eq!(run(Semantics::StateFirst), 1);
        assert_eq!(run(Semantics::StreamFirst), 0);
    }

    #[test]
    fn snapshot_semantics_batches_by_watermark() {
        // With lateness 10, events buffer until the watermark passes
        // them; rules for the whole batch run before any stream
        // processing, so an early event's gate sees state from a later
        // event in the same batch.
        let mut eng = Engine::new(EngineConfig {
            semantics: Semantics::Snapshot,
            max_lateness: Duration::millis(10),
            ..EngineConfig::default()
        });
        eng.declare_attr("status", AttrSchema::one());
        eng.add_rules_text(SESSION_RULES).unwrap();
        let store = eng.shared_store();
        let mut g = Graph::new();
        let gate =
            g.add_op(StateGate::new(store, "user", "status", "active").time_ref(TimeRef::Current));
        g.connect_source("clicks", gate);
        let sink = g.add_sink();
        g.connect(gate, sink.node);
        eng.set_graph(g).unwrap();
        // browse at t1 precedes enter at t2, but both land in the same
        // watermark batch: the browse is gated by the *post-batch*
        // state.
        eng.push(click(1, "u1", "browse"));
        eng.push(click(2, "u1", "enter"));
        eng.finish();
        assert_eq!(sink.len(), 2, "browse passes under snapshot semantics");
    }

    #[test]
    fn out_of_order_within_lateness_reordered() {
        let mut eng = Engine::new(EngineConfig {
            max_lateness: Duration::millis(10),
            ..EngineConfig::default()
        });
        eng.declare_attr("room", AttrSchema::one());
        eng.add_rules_text(
            r#"
            rule mv:
              on sensors
              replace $(visitor).room = room
            "#,
        )
        .unwrap();
        // Arrive out of order: t20 then t15 (within bound).
        eng.push(Event::from_pairs(
            "sensors",
            20u64,
            [("visitor", Value::str("v")), ("room", Value::str("b"))],
        ));
        eng.push(Event::from_pairs(
            "sensors",
            15u64,
            [("visitor", Value::str("v")), ("room", Value::str("a"))],
        ));
        eng.finish();
        // Processed in timestamp order: final room is b.
        let store = eng.store();
        let v = store.lookup_entity("v").unwrap();
        assert_eq!(store.current().value(v, "room"), Some(Value::str("b")));
        let h = store.history(v, "room");
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1, Value::str("a"));
    }

    #[test]
    fn buffered_low_ts_tracks_the_reorder_buffer() {
        let mut eng = Engine::new(EngineConfig {
            max_lateness: Duration::millis(10),
            ..EngineConfig::default()
        });
        assert_eq!(eng.buffered_low_ts(), None, "empty engine buffers nothing");
        let ev = |ts: u64| Event::from_pairs("s", ts, [("x", 1i64)]);
        // Watermark = 20 - 10 = 10: both events sit in the buffer.
        eng.push_batch([ev(20), ev(15)]);
        assert_eq!(eng.buffered_low_ts(), Some(Timestamp::new(15)));
        // Watermark 40: both drain, the new event buffers alone.
        eng.push(ev(50));
        assert_eq!(eng.buffered_low_ts(), Some(Timestamp::new(50)));
        eng.finish();
        assert_eq!(eng.buffered_low_ts(), None, "finish drains the buffer");
    }

    #[test]
    fn events_at_the_watermark_drain_without_a_further_advance() {
        // Regression: an event whose timestamp equals the current
        // watermark is admitted but advances nothing, and push_batch
        // only drained on an advance — so with a constant-timestamp
        // stream every event after the first sat in the reorder buffer
        // forever (and durable acks gated on buffered_low_ts never
        // released).
        let mut eng = Engine::with_defaults(); // lateness 0
        let ev = |n: i64| Event::from_pairs("s", 7u64, [("x", n)]);
        for n in 0..5 {
            eng.push(ev(n));
            assert_eq!(
                eng.buffered_low_ts(),
                None,
                "same-ts event {n} must apply immediately, not buffer"
            );
        }
        assert_eq!(eng.metrics().events, 5);
        assert_eq!(eng.metrics().late_dropped, 0);
    }

    #[test]
    fn late_events_dropped_and_counted() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr("room", AttrSchema::one());
        assert!(eng.push(Event::from_pairs("sensors", 100u64, [("x", 1i64)])));
        assert!(!eng.push(Event::from_pairs("sensors", 50u64, [("x", 1i64)])));
        assert_eq!(eng.metrics().late_dropped, 1);
    }

    #[test]
    fn late_dropped_counts_each_drop_exactly_once() {
        // Regression: Engine::push used to bump metrics.late_dropped
        // directly while metrics() overwrote the field from the
        // watermark generator — a dead store hiding a double count had
        // the overwrite ever been removed. One source of truth now.
        let mut eng = Engine::with_defaults();
        let ev = |ts: u64| Event::from_pairs("s", ts, [("x", 1i64)]);
        assert!(eng.push(ev(100)));
        assert!(!eng.push(ev(40)), "late");
        assert!(eng.push(ev(200)));
        assert!(!eng.push(ev(150)), "late");
        assert!(!eng.push(ev(10)), "late");
        assert!(eng.push(ev(300)));
        let m = eng.metrics();
        assert_eq!(m.late_dropped, 3, "exactly one count per dropped event");
        assert_eq!(m.events, 3, "on-time events counted separately");
    }

    #[test]
    fn push_batch_matches_per_event_push() {
        // The same stream — including out-of-order and late events —
        // replayed one event at a time and as batches must yield the
        // same store, the same query results, and the same counters.
        let events: Vec<Event> = (0..200u64)
            .map(|i| {
                // Mild disorder: swap adjacent timestamps, plus a few
                // events far enough back to be dropped as late.
                let ts = match i % 10 {
                    3 => i.saturating_sub(1),
                    7 => i.saturating_sub(40), // beyond the bound: late
                    _ => i,
                };
                Event::from_pairs(
                    "sensors",
                    ts + 100,
                    [
                        ("visitor", Value::str(&format!("v{}", i % 9))),
                        ("room", Value::str(&format!("r{}", i % 4))),
                    ],
                )
            })
            .collect();
        let build = || {
            let mut eng = Engine::new(EngineConfig {
                max_lateness: Duration::millis(5),
                ..EngineConfig::default()
            });
            eng.declare_attr("room", AttrSchema::one());
            eng.add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
            eng
        };
        let mut single = build();
        for ev in events.iter().cloned() {
            single.push(ev);
        }
        single.finish();
        let mut batched = build();
        let mut dropped = 0u64;
        for chunk in events.chunks(17) {
            dropped += batched.push_batch(chunk.iter().cloned());
        }
        batched.finish();

        assert_eq!(single.metrics().events, batched.metrics().events);
        assert_eq!(single.metrics().late_dropped, dropped);
        assert_eq!(
            single.metrics().late_dropped,
            batched.metrics().late_dropped
        );
        assert_eq!(single.metrics().transitions, batched.metrics().transitions);
        let a = single.store();
        let b = batched.store();
        for v in 0..9 {
            let name = format!("v{v}");
            let ea = a.lookup_entity(name.as_str()).unwrap();
            let eb = b.lookup_entity(name.as_str()).unwrap();
            assert_eq!(a.history(ea, "room"), b.history(eb, "room"), "{name}");
            assert_eq!(a.current().value(ea, "room"), b.current().value(eb, "room"));
        }
        drop((a, b));
        for q in [
            "select ?v where { ?v room \"r1\" }",
            "select ?v ?r where { ?v room ?r }",
        ] {
            assert_eq!(single.query(q).unwrap(), batched.query(q).unwrap());
        }
    }

    #[test]
    fn stream_first_without_executor_skips_stream_push() {
        // Regression guard for the clone-skip: StreamFirst with no
        // graph attached must still apply rules correctly.
        let mut eng = Engine::new(EngineConfig {
            semantics: Semantics::StreamFirst,
            ..EngineConfig::default()
        });
        eng.declare_attr("status", AttrSchema::one());
        eng.add_rules_text(SESSION_RULES).unwrap();
        eng.run([click(1, "u1", "enter"), click(2, "u2", "enter")]);
        eng.finish();
        let res = eng
            .query("select ?u where { ?u status \"active\" }")
            .unwrap();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn take_journal_keeps_engine_memory_bounded() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr("room", AttrSchema::one());
        eng.add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
            .unwrap();
        let sensor = |ts: u64, room: &str| {
            Event::from_pairs(
                "sensors",
                ts,
                [("visitor", Value::str("v")), ("room", Value::str(room))],
            )
        };
        let mut drained = Vec::new();
        for i in 0..100u64 {
            eng.push(sensor(i + 1, &format!("r{}", i % 7)));
            let before = eng.journal_len();
            let batch = eng.take_journal();
            assert_eq!(batch.len(), before);
            assert_eq!(eng.journal_len(), 0, "journal drains to zero every time");
            drained.extend(batch);
        }
        // The journal never grew monotonically: each drain held at
        // most one event's worth of ops, not the whole history.
        assert!(drained.len() > 100, "transitions were journaled");
        // And the concatenation of all drains still replays to the
        // live state.
        let replayed = fenestra_temporal::TemporalStore::replay(&drained).unwrap();
        let store = eng.store();
        let v = store.lookup_entity("v").unwrap();
        assert_eq!(
            replayed.current().value(v, "room"),
            store.current().value(v, "room")
        );
        assert_eq!(replayed.history(v, "room"), store.history(v, "room"));
    }

    #[test]
    fn journal_disabled_engine_journals_nothing() {
        let mut eng = Engine::new(EngineConfig {
            journal: false,
            ..EngineConfig::default()
        });
        eng.declare_attr("room", AttrSchema::one());
        eng.add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
            .unwrap();
        eng.push(Event::from_pairs(
            "sensors",
            1u64,
            [("visitor", "a"), ("room", "lab")],
        ));
        assert_eq!(eng.journal_len(), 0);
        assert!(eng.take_journal().is_empty());
    }

    #[test]
    fn reasoning_maintains_derived_state() {
        let mut eng = Engine::new(EngineConfig {
            auto_reason: true,
            ..EngineConfig::default()
        });
        eng.set_ontology(Ontology::from_axioms([
            fenestra_reason::Axiom::SubClassOf(Value::str("toy_cars"), Value::str("toys")),
            fenestra_reason::Axiom::SubClassOf(Value::str("toys"), Value::str("products")),
        ]));
        eng.add_rules_text(
            r#"
            rule classify:
              on catalog
              replace $(product).type = class
            "#,
        )
        .unwrap();
        eng.push(Event::from_pairs(
            "catalog",
            1u64,
            [
                ("product", Value::str("p1")),
                ("class", Value::str("toy_cars")),
            ],
        ));
        eng.finish();
        let res = eng
            .query("select ?p where { ?p type \"products\" }")
            .unwrap();
        assert_eq!(res.len(), 1, "derived membership queryable");
        // Excluding derived facts hides it.
        let res = eng
            .query_with(
                "select ?p where { ?p type \"products\" }",
                QueryOptions {
                    exclude_derived: true,
                },
            )
            .unwrap();
        assert!(res.is_empty());
        assert!(eng.metrics().reason_asserted >= 2);
    }

    #[test]
    fn query_unknown_history_entity_errors() {
        let eng = Engine::with_defaults();
        assert!(eng.query("history ghost room").is_err());
    }

    #[test]
    fn obs_records_dwell_margins_and_gauges() {
        use std::sync::atomic::Ordering::Relaxed;
        let obs = Arc::new(fenestra_obs::ShardObs::default());
        let mut eng = Engine::new(EngineConfig {
            max_lateness: Duration::millis(10),
            ..EngineConfig::default()
        });
        eng.set_obs(obs.clone());
        let ev = |ts: u64| Event::from_pairs("s", ts, [("x", 1i64)]);
        // wm = 100 - 10 = 90; 95 buffers; 50 is 40ms late.
        eng.push_batch([ev(100), ev(95), ev(50)]);
        assert_eq!(obs.engine.load().events, 2);
        assert_eq!(obs.engine.load().late_dropped, 1);
        let margins = obs.late_margin_ms.snapshot();
        assert_eq!(
            margins.count, 1,
            "margin histogram counts exactly the drops"
        );
        assert_eq!(margins.max, 40, "drop was 40ms behind the watermark");
        assert_eq!(obs.reorder_depth.load(Relaxed), 2, "95 and 100 buffered");
        assert_eq!(obs.watermark_lag_ms.load(Relaxed), 10, "lag = bound");
        eng.finish();
        assert_eq!(obs.reorder_depth.load(Relaxed), 0, "finish drains");
        let dwell = obs.reorder_dwell_us.snapshot();
        assert_eq!(dwell.count, 2, "one dwell sample per applied event");
    }
}

#[cfg(test)]
mod retention_tests {
    use super::*;
    use fenestra_base::time::Duration;

    fn sensor(ts: u64, room: &str) -> Event {
        Event::from_pairs(
            "sensors",
            ts,
            [("visitor", Value::str("v")), ("room", Value::str(room))],
        )
    }

    #[test]
    fn retention_gc_reclaims_old_history() {
        let mut eng = Engine::new(EngineConfig {
            retention: Some(Duration::millis(100)),
            ..EngineConfig::default()
        });
        eng.declare_attr("room", AttrSchema::one());
        eng.add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
            .unwrap();
        for i in 0..50u64 {
            eng.push(sensor(i * 20, &format!("r{}", i % 5)));
        }
        eng.finish();
        let store = eng.store();
        let v = store.lookup_entity("v").unwrap();
        // History trimmed: far fewer than 50 intervals survive, but
        // the current room is intact.
        let h = store.history(v, "room");
        assert!(
            h.len() < 20,
            "retention should have trimmed history: {}",
            h.len()
        );
        assert!(store.current().value(v, "room").is_some());
        // Recent past still answerable.
        assert!(store
            .as_of(Timestamp::new(49 * 20))
            .value(v, "room")
            .is_some());
    }

    #[test]
    fn manual_gc_and_snapshot_round_trip() {
        let dir = std::env::temp_dir().join("fenestra-engine-persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine-state.json");

        let mut eng = Engine::with_defaults();
        eng.declare_attr("room", AttrSchema::one());
        eng.add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
            .unwrap();
        eng.run((0..10u64).map(|i| sensor(i * 10, &format!("r{i}"))));
        eng.finish();
        let reclaimed = eng.gc(Timestamp::new(50));
        assert!(reclaimed > 0);
        eng.save_state(&path).unwrap();

        // A fresh engine resumes from the snapshot.
        let mut eng2 = Engine::with_defaults();
        eng2.load_state(&path).unwrap();
        let store = eng2.store();
        let v = store.lookup_entity("v").unwrap();
        assert_eq!(store.current().value(v, "room"), Some(Value::str("r9")));
        drop(store);
        // load_state after processing is rejected.
        let mut eng3 = Engine::with_defaults();
        eng3.declare_attr("room", AttrSchema::one());
        eng3.push(sensor(1, "x"));
        assert!(eng3.load_state(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod transition_stream_tests {
    use super::*;
    use fenestra_base::time::Duration;
    use fenestra_stream::aggregate::AggSpec;
    use fenestra_stream::window::time::TimeWindowOp;

    /// The dataflow can consume the state-change stream: count room
    /// changes per visitor without touching the sensor stream at all.
    #[test]
    fn transitions_republished_as_stream() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr("room", AttrSchema::one());
        eng.add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
            .unwrap();
        eng.publish_transitions("state_changes");
        let mut g = Graph::new();
        let win = g.add_op(
            TimeWindowOp::tumbling(Duration::millis(1000))
                .group_by(["entity"])
                .aggregate(AggSpec::count("changes")),
        );
        g.connect_source("state_changes", win);
        let sink = g.add_sink();
        g.connect(win, sink.node);
        eng.set_graph(g).unwrap();

        let sensor = |ts: u64, v: &str, room: &str| {
            Event::from_pairs(
                "sensors",
                ts,
                [("visitor", Value::str(v)), ("room", Value::str(room))],
            )
        };
        eng.run([
            sensor(10, "a", "lobby"),
            sensor(20, "a", "lab"),
            sensor(30, "b", "lobby"),
            sensor(40, "a", "lab"), // idempotent: no transition
        ]);
        eng.finish();
        let rows = sink.take();
        assert_eq!(rows.len(), 2);
        let a = rows
            .iter()
            .find(|e| e.get("entity") == Some(&Value::str("a")))
            .unwrap();
        assert_eq!(
            a.get("changes"),
            Some(&Value::Int(2)),
            "idempotent move not republished"
        );
        let b = rows
            .iter()
            .find(|e| e.get("entity") == Some(&Value::str("b")))
            .unwrap();
        assert_eq!(b.get("changes"), Some(&Value::Int(1)));
    }

    /// Published events carry full transition detail.
    #[test]
    fn transition_events_carry_detail() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr("status", AttrSchema::one());
        eng.add_rules_text(
            r#"
            rule enter:
              on clicks where action == "enter"
              replace $(user).status = "active"
            rule leave:
              on clicks where action == "leave"
              retract $(user).status = "active"
            "#,
        )
        .unwrap();
        eng.publish_transitions("deltas");
        let mut g = Graph::new();
        let sink = g.add_sink();
        g.connect_source("deltas", sink.node);
        eng.set_graph(g).unwrap();
        eng.run([
            Event::from_pairs("clicks", 1u64, [("user", "u"), ("action", "enter")]),
            Event::from_pairs("clicks", 9u64, [("user", "u"), ("action", "leave")]),
        ]);
        eng.finish();
        let out = sink.take();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("op"), Some(&Value::str("replace")));
        assert_eq!(out[0].get("rule"), Some(&Value::str("enter")));
        assert_eq!(out[0].get("attr"), Some(&Value::str("status")));
        assert_eq!(out[0].get("value"), Some(&Value::str("active")));
        assert_eq!(out[1].get("op"), Some(&Value::str("retract")));
        assert_eq!(out[1].ts, Timestamp::new(9));
    }
}

#[cfg(test)]
mod ttl_engine_tests {
    use super::*;
    use fenestra_base::time::Duration;

    /// Idle sessions expire without a leave event — the keep-alive
    /// idiom: store the last-seen timestamp, whose value changes on
    /// every click, restarting the TTL.
    #[test]
    fn idle_sessions_expire_via_ttl() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr(
            "last_seen",
            AttrSchema::one().with_ttl(Duration::millis(100)),
        );
        eng.add_rules_text("rule seen:\n on clicks\n replace $(user).last_seen = ts")
            .unwrap();
        eng.publish_transitions("state_changes");
        let mut g = Graph::new();
        let sink = g.add_sink();
        g.connect_source("state_changes", sink.node);
        eng.set_graph(g).unwrap();

        let click = |ts: u64, u: &str| Event::from_pairs("clicks", ts, [("user", u)]);
        eng.run([
            click(10, "a"),
            click(50, "a"), // refresh: ttl restarts at 50
            click(60, "b"),
            click(300, "c"), // watermark 300 expires a (at 150) and b (at 160)
        ]);
        eng.finish();
        let store = eng.store();
        let a = store.lookup_entity("a").unwrap();
        let b = store.lookup_entity("b").unwrap();
        let c = store.lookup_entity("c").unwrap();
        assert_eq!(
            store.current().value(a, "last_seen"),
            None,
            "a idle since 50"
        );
        assert_eq!(store.current().value(b, "last_seen"), None);
        assert!(store.current().value(c, "last_seen").is_some(), "c fresh");
        // a's session recorded as [10,50) + [50,150).
        let h = store.history(a, "last_seen");
        assert_eq!(h.len(), 2);
        assert_eq!(h[1].0.end, Some(Timestamp::new(150)));
        drop(store);
        assert_eq!(eng.metrics().ttl_expired, 2);
        // Expiries were published on the transition stream.
        let expire_events: Vec<Event> = sink
            .take()
            .into_iter()
            .filter(|e| e.get("op") == Some(&Value::str("expire")))
            .collect();
        assert_eq!(expire_events.len(), 2);
        assert_eq!(expire_events[0].ts, Timestamp::new(150));
    }
}

#[cfg(test)]
mod watch_tests {
    use super::*;

    #[test]
    fn watch_publishes_view_deltas() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr("status", AttrSchema::one());
        eng.add_rules_text(
            r#"
            rule enter:
              on clicks where action == "enter"
              replace $(user).status = "active"
            rule leave:
              on clicks where action == "leave"
              replace $(user).status = "idle"
            "#,
        )
        .unwrap();
        eng.watch(
            "actives",
            r#"select ?u where { ?u status "active" }"#,
            "view_updates",
        )
        .unwrap();
        let mut g = Graph::new();
        let sink = g.add_sink();
        g.connect_source("view_updates", sink.node);
        eng.set_graph(g).unwrap();

        let click = |ts: u64, u: &str, a: &str| {
            Event::from_pairs("clicks", ts, [("user", u), ("action", a)])
        };
        eng.run([
            click(1, "a", "enter"),
            click(2, "b", "enter"),
            click(5, "a", "leave"),
        ]);
        eng.finish();
        let out = sink.take();
        // +a, +b, -a = three deltas.
        assert_eq!(out.len(), 3);
        let signs: Vec<i64> = out
            .iter()
            .map(|e| e.get("sign").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(signs.iter().filter(|s| **s == 1).count(), 2);
        assert_eq!(signs.iter().filter(|s| **s == -1).count(), 1);
        assert!(out
            .iter()
            .all(|e| e.get("watch") == Some(&Value::str("actives"))));
        // The leave delta is stamped at its batch's watermark.
        assert_eq!(out[2].ts, Timestamp::new(5));
    }

    #[test]
    fn history_queries_rejected_as_watches() {
        let mut eng = Engine::with_defaults();
        assert!(eng.watch("w", "history x room", "s").is_err());
        assert!(eng.watch("w", "not even a query", "s").is_err());
    }

    #[test]
    fn unchanged_views_stay_silent() {
        let mut eng = Engine::with_defaults();
        eng.declare_attr("status", AttrSchema::one());
        eng.add_rules_text("rule r:\n on s\n replace $(u).status = v")
            .unwrap();
        eng.watch("w", r#"select ?u where { ?u status "x" }"#, "deltas")
            .unwrap();
        let mut g = Graph::new();
        let sink = g.add_sink();
        g.connect_source("deltas", sink.node);
        eng.set_graph(g).unwrap();
        // The same value repeatedly: one +delta only.
        for ts in 1..=5u64 {
            eng.push(Event::from_pairs("s", ts, [("u", "e"), ("v", "x")]));
        }
        eng.finish();
        assert_eq!(sink.take().len(), 1);
    }
}
