//! Textual ontology format.
//!
//! ```text
//! # taxonomy
//! class toy_cars < toys
//! class toys < products
//!
//! # property axioms
//! property part_of transitive
//! property adjacent symmetric
//! property part_of inverse has_part
//! property sells domain shop
//! property sells range product
//! subproperty manages < works_with
//! ```
//!
//! One axiom per declaration; `#` comments and blank lines are
//! ignored.

use crate::ontology::{Axiom, Ontology};
use fenestra_base::error::Result;
use fenestra_base::parse::{lex, Cursor};
use fenestra_base::symbol::Symbol;
use fenestra_base::value::Value;

/// Parse an ontology program.
pub fn parse_ontology(src: &str) -> Result<Ontology> {
    Ok(Ontology::from_axioms(parse_axioms(src)?))
}

/// Parse the axiom list (useful for merging).
pub fn parse_axioms(src: &str) -> Result<Vec<Axiom>> {
    let toks = lex(src)?;
    let mut c = Cursor::new(&toks);
    let mut out = Vec::new();
    while !c.at_end() {
        if c.eat_kw("class") {
            let sub = c.expect_ident()?;
            c.expect_punct("<")?;
            let sup = c.expect_ident()?;
            out.push(Axiom::SubClassOf(Value::str(&sub), Value::str(&sup)));
        } else if c.eat_kw("subproperty") {
            let sub = Symbol::intern(&c.expect_ident()?);
            c.expect_punct("<")?;
            let sup = Symbol::intern(&c.expect_ident()?);
            out.push(Axiom::SubPropertyOf(sub, sup));
        } else if c.eat_kw("property") {
            let p = Symbol::intern(&c.expect_ident()?);
            if c.eat_kw("transitive") {
                out.push(Axiom::Transitive(p));
            } else if c.eat_kw("symmetric") {
                out.push(Axiom::Symmetric(p));
            } else if c.eat_kw("inverse") {
                let q = Symbol::intern(&c.expect_ident()?);
                out.push(Axiom::InverseOf(p, q));
            } else if c.eat_kw("domain") {
                let cl = c.expect_ident()?;
                out.push(Axiom::Domain(p, Value::str(&cl)));
            } else if c.eat_kw("range") {
                let cl = c.expect_ident()?;
                out.push(Axiom::Range(p, Value::str(&cl)));
            } else {
                return Err(
                    c.error("expected transitive | symmetric | inverse P | domain C | range C")
                );
            }
        } else {
            return Err(c.error("expected `class`, `subproperty`, or `property`"));
        }
    }
    Ok(out)
}

/// Render axioms back to the textual format.
pub fn print_ontology(ont: &Ontology) -> String {
    let mut out = String::new();
    for a in ont.axioms() {
        let line = match a {
            Axiom::SubClassOf(sub, sup) => format!(
                "class {} < {}",
                sub.as_str().unwrap_or("?"),
                sup.as_str().unwrap_or("?")
            ),
            Axiom::SubPropertyOf(sub, sup) => format!("subproperty {sub} < {sup}"),
            Axiom::Domain(p, c) => format!("property {p} domain {}", c.as_str().unwrap_or("?")),
            Axiom::Range(p, c) => format!("property {p} range {}", c.as_str().unwrap_or("?")),
            Axiom::Transitive(p) => format!("property {p} transitive"),
            Axiom::Symmetric(p) => format!("property {p} symmetric"),
            Axiom::InverseOf(p, q) => format!("property {p} inverse {q}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # taxonomy
        class toy_cars < toys
        class toys < products

        property part_of transitive
        property adjacent symmetric
        property part_of inverse has_part
        property sells domain shop
        property sells range product
        subproperty manages < works_with
    "#;

    #[test]
    fn parse_all_axiom_kinds() {
        let axioms = parse_axioms(SAMPLE).unwrap();
        assert_eq!(axioms.len(), 8);
        let ont = Ontology::from_axioms(axioms);
        assert!(ont.is_subclass(&Value::str("toy_cars"), &Value::str("products")));
        assert!(ont.is_transitive(Symbol::intern("part_of")));
        assert!(ont.is_symmetric(Symbol::intern("adjacent")));
        assert_eq!(ont.inverse_pairs().len(), 1);
        assert_eq!(ont.domains().len(), 1);
        assert_eq!(ont.ranges().len(), 1);
    }

    #[test]
    fn print_parse_round_trip() {
        let ont = parse_ontology(SAMPLE).unwrap();
        let printed = print_ontology(&ont);
        let back = parse_ontology(&printed).unwrap();
        assert_eq!(back.axioms(), ont.axioms());
    }

    #[test]
    fn errors_reported() {
        assert!(parse_axioms("class a").is_err());
        assert!(parse_axioms("class a > b").is_err());
        assert!(parse_axioms("property p frobnicate").is_err());
        assert!(parse_axioms("bogus x < y").is_err());
    }
}
