#![warn(missing_docs)]
//! # fenestra-reason
//!
//! The **reasoning component** of Fenestra: derives implicit knowledge
//! from the explicit state using domain ontologies (paper §3: "the
//! state component can exploit domain information — for instance in
//! the form of ontologies — to derive new knowledge from the explicit
//! information it stores").
//!
//! The ontology language is RDFS-plus ([`ontology::Axiom`]): subclass,
//! subproperty, domain, range, transitive, symmetric, and inverse
//! axioms over the store's EAV facts (an EAV fact *is* a triple). The
//! e-commerce case study's product taxonomy — "automatically derive
//! sub-class relations" — is the canonical use.
//!
//! Three evaluation strategies, compared in experiment E8:
//!
//! * [`materialize::naive`] — iterate all rules over all facts to
//!   fixpoint;
//! * [`materialize::seminaive`] — delta iteration (only new facts feed
//!   the next round);
//! * [`incremental::IncrementalMaterializer`] — maintains the
//!   materialization under single-fact insertions and deletions using
//!   delete-and-rederive (DRed), which is exact even for recursive
//!   rules such as transitivity.
//!
//! [`store_sync::sync_store`] pushes the derived facts into a
//! [`fenestra_temporal::TemporalStore`] with `Derived` provenance, so
//! queries see inferred state exactly like asserted state.

pub mod dsl;
pub mod incremental;
pub mod materialize;
pub mod ontology;
pub mod store_sync;
pub mod triple;

pub use dsl::{parse_ontology, print_ontology};
pub use incremental::IncrementalMaterializer;
pub use ontology::{Axiom, Ontology};
pub use triple::Triple;
