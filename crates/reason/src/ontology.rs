//! RDFS-plus ontology axioms.

use fenestra_base::symbol::Symbol;
use fenestra_base::value::Value;
use std::collections::{BTreeSet, HashMap, HashSet};

/// An ontology axiom. Classes are identified by values (typically
/// interned strings), properties by attribute symbols.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Axiom {
    /// `sub ⊑ sup`: membership in `sub` implies membership in `sup`.
    SubClassOf(Value, Value),
    /// `(x sub y) → (x sup y)`.
    SubPropertyOf(Symbol, Symbol),
    /// `(x p y) → (x type c)`.
    Domain(Symbol, Value),
    /// `(x p y) → (y type c)` when `y` resolves to an entity.
    Range(Symbol, Value),
    /// `(x p y), (y p z) → (x p z)` when `y` resolves to an entity.
    Transitive(Symbol),
    /// `(x p y) → (y p x)` when `y` resolves to an entity.
    Symmetric(Symbol),
    /// `(x p y) → (y q x)` when `y` resolves to an entity.
    InverseOf(Symbol, Symbol),
}

/// A set of axioms with precomputed subclass / subproperty closures.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    axioms: Vec<Axiom>,
    /// Reflexive-transitive closure: class → all superclasses
    /// (excluding itself).
    superclasses: HashMap<Value, BTreeSet<Value>>,
    /// Property → all superproperties (excluding itself).
    superprops: HashMap<Symbol, BTreeSet<Symbol>>,
    transitive: HashSet<Symbol>,
    symmetric: HashSet<Symbol>,
    inverses: Vec<(Symbol, Symbol)>,
    domains: Vec<(Symbol, Value)>,
    ranges: Vec<(Symbol, Value)>,
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Ontology {
        Ontology::default()
    }

    /// Build from axioms.
    pub fn from_axioms(axioms: impl IntoIterator<Item = Axiom>) -> Ontology {
        let mut o = Ontology::new();
        for a in axioms {
            o.add(a);
        }
        o
    }

    /// Add one axiom, updating closures.
    pub fn add(&mut self, axiom: Axiom) {
        match &axiom {
            Axiom::Transitive(p) => {
                self.transitive.insert(*p);
            }
            Axiom::Symmetric(p) => {
                self.symmetric.insert(*p);
            }
            Axiom::InverseOf(p, q) => {
                self.inverses.push((*p, *q));
            }
            Axiom::Domain(p, c) => {
                self.domains.push((*p, *c));
            }
            Axiom::Range(p, c) => {
                self.ranges.push((*p, *c));
            }
            Axiom::SubClassOf(..) | Axiom::SubPropertyOf(..) => {}
        }
        self.axioms.push(axiom);
        self.rebuild_closures();
    }

    fn rebuild_closures(&mut self) {
        // Subclass closure by BFS from each declared class.
        let mut direct_c: HashMap<Value, Vec<Value>> = HashMap::new();
        let mut direct_p: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
        for a in &self.axioms {
            match a {
                Axiom::SubClassOf(sub, sup) => direct_c.entry(*sub).or_default().push(*sup),
                Axiom::SubPropertyOf(sub, sup) => direct_p.entry(*sub).or_default().push(*sup),
                _ => {}
            }
        }
        self.superclasses = closure(&direct_c);
        self.superprops = closure(&direct_p);
    }

    /// All strict superclasses of `c` (transitive).
    pub fn superclasses_of(&self, c: &Value) -> impl Iterator<Item = &Value> {
        self.superclasses.get(c).into_iter().flatten()
    }

    /// All strict superproperties of `p` (transitive).
    pub fn superproperties_of(&self, p: Symbol) -> impl Iterator<Item = &Symbol> {
        self.superprops.get(&p).into_iter().flatten()
    }

    /// Whether `sub` is a (possibly indirect) subclass of `sup`.
    pub fn is_subclass(&self, sub: &Value, sup: &Value) -> bool {
        sub == sup || self.superclasses.get(sub).is_some_and(|s| s.contains(sup))
    }

    /// Whether `p` is declared transitive.
    pub fn is_transitive(&self, p: Symbol) -> bool {
        self.transitive.contains(&p)
    }

    /// Whether `p` is declared symmetric.
    pub fn is_symmetric(&self, p: Symbol) -> bool {
        self.symmetric.contains(&p)
    }

    /// Declared inverse pairs (both directions are applied).
    pub fn inverse_pairs(&self) -> &[(Symbol, Symbol)] {
        &self.inverses
    }

    /// Declared domains.
    pub fn domains(&self) -> &[(Symbol, Value)] {
        &self.domains
    }

    /// Declared ranges.
    pub fn ranges(&self) -> &[(Symbol, Value)] {
        &self.ranges
    }

    /// The raw axioms.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// Every property mentioned by any axiom (used to decide which
    /// base facts are reasoning-relevant).
    pub fn relevant_properties(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for a in &self.axioms {
            match a {
                Axiom::SubPropertyOf(p, q) | Axiom::InverseOf(p, q) => {
                    out.insert(*p);
                    out.insert(*q);
                }
                Axiom::Domain(p, _)
                | Axiom::Range(p, _)
                | Axiom::Transitive(p)
                | Axiom::Symmetric(p) => {
                    out.insert(*p);
                }
                Axiom::SubClassOf(..) => {
                    out.insert(crate::triple::type_attr());
                }
            }
        }
        out
    }
}

fn closure<K: Copy + Eq + std::hash::Hash + Ord>(
    direct: &HashMap<K, Vec<K>>,
) -> HashMap<K, BTreeSet<K>> {
    let mut out: HashMap<K, BTreeSet<K>> = HashMap::new();
    for &start in direct.keys() {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<K> = direct.get(&start).cloned().unwrap_or_default();
        while let Some(k) = stack.pop() {
            if k != start && seen.insert(k) {
                if let Some(next) = direct.get(&k) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        out.insert(start, seen);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn subclass_closure_is_transitive() {
        let o = Ontology::from_axioms([
            Axiom::SubClassOf(v("toy_cars"), v("toys")),
            Axiom::SubClassOf(v("toys"), v("products")),
            Axiom::SubClassOf(v("books"), v("products")),
        ]);
        assert!(o.is_subclass(&v("toy_cars"), &v("products")));
        assert!(o.is_subclass(&v("toy_cars"), &v("toys")));
        assert!(o.is_subclass(&v("toys"), &v("toys")), "reflexive");
        assert!(!o.is_subclass(&v("books"), &v("toys")));
        let supers: Vec<&Value> = o.superclasses_of(&v("toy_cars")).collect();
        assert_eq!(supers.len(), 2);
    }

    #[test]
    fn cyclic_subclass_terminates() {
        let o = Ontology::from_axioms([
            Axiom::SubClassOf(v("a"), v("b")),
            Axiom::SubClassOf(v("b"), v("a")),
        ]);
        assert!(o.is_subclass(&v("a"), &v("b")));
        assert!(o.is_subclass(&v("b"), &v("a")));
    }

    #[test]
    fn property_flags() {
        let p = Symbol::intern("part_of");
        let q = Symbol::intern("has_part");
        let o = Ontology::from_axioms([
            Axiom::Transitive(p),
            Axiom::InverseOf(p, q),
            Axiom::Symmetric(Symbol::intern("adjacent")),
        ]);
        assert!(o.is_transitive(p));
        assert!(!o.is_transitive(q));
        assert!(o.is_symmetric(Symbol::intern("adjacent")));
        assert_eq!(o.inverse_pairs(), &[(p, q)]);
    }

    #[test]
    fn relevant_properties_cover_axioms() {
        let o = Ontology::from_axioms([
            Axiom::SubClassOf(v("a"), v("b")),
            Axiom::Domain(Symbol::intern("sells"), v("shop")),
        ]);
        let rel = o.relevant_properties();
        assert!(rel.contains(&Symbol::intern("type")));
        assert!(rel.contains(&Symbol::intern("sells")));
    }
}
