//! Fixpoint materialization: naive and semi-naive evaluation.

use crate::ontology::Ontology;
use crate::triple::{type_attr, Resolver, Triple, TripleIndex};
use fenestra_base::value::Value;
use std::collections::HashSet;

/// All facts derivable *in one step* from premise `t` (joining against
/// `idx` for the two-premise transitivity rule).
pub fn derive_from(
    t: &Triple,
    idx: &TripleIndex,
    ont: &Ontology,
    resolve: Resolver<'_>,
) -> Vec<Triple> {
    let mut out = Vec::new();
    let ty = type_attr();
    if t.p == ty {
        for sup in ont.superclasses_of(&t.o) {
            out.push(Triple::new(t.s, ty, *sup));
        }
    }
    for supp in ont.superproperties_of(t.p) {
        out.push(Triple::new(t.s, *supp, t.o));
    }
    for (p, c) in ont.domains() {
        if *p == t.p {
            out.push(Triple::new(t.s, ty, *c));
        }
    }
    let oe = resolve(t.o);
    if let Some(oe) = oe {
        for (p, c) in ont.ranges() {
            if *p == t.p {
                out.push(Triple::new(oe, ty, *c));
            }
        }
        if ont.is_symmetric(t.p) {
            out.push(Triple::new(oe, t.p, Value::Id(t.s)));
        }
        for (p, q) in ont.inverse_pairs() {
            if t.p == *p {
                out.push(Triple::new(oe, *q, Value::Id(t.s)));
            }
            if t.p == *q {
                out.push(Triple::new(oe, *p, Value::Id(t.s)));
            }
        }
        if ont.is_transitive(t.p) {
            // (t.s, p, t.o) ⋈ (oe, p, z) → (t.s, p, z)
            for z in idx.objects(t.p, oe) {
                out.push(Triple::new(t.s, t.p, *z));
            }
        }
    }
    if ont.is_transitive(t.p) {
        // (x, p, y→t.s) ⋈ (t.s, p, t.o) → (x, p, t.o)
        for x in idx.subjects(t.p, t.s) {
            out.push(Triple::new(*x, t.p, t.o));
        }
    }
    out
}

/// Whether `f` is derivable in one step from the facts in `idx`
/// (excluding `f` itself as its own premise is irrelevant: no rule
/// concludes its own premise).
pub fn derivable_one_step(
    f: &Triple,
    idx: &TripleIndex,
    ont: &Ontology,
    resolve: Resolver<'_>,
) -> bool {
    let ty = type_attr();
    if f.p == ty {
        // Subclass: some (f.s, type, sub) with f.o a superclass of sub.
        for sub in idx.objects(ty, f.s) {
            if *sub != f.o && ont.is_subclass(sub, &f.o) {
                return true;
            }
        }
        // Domain: some (f.s, p, _) with Domain(p, f.o).
        for (p, c) in ont.domains() {
            if *c == f.o && !idx.objects(*p, f.s).is_empty() {
                return true;
            }
        }
        // Range: some (_, p, o→f.s) with Range(p, f.o).
        for (p, c) in ont.ranges() {
            if *c == f.o && !idx.subjects(*p, f.s).is_empty() {
                return true;
            }
        }
        return false;
    }
    // Subproperty: some (f.s, sub, f.o) with f.p a superproperty.
    for a in ont.axioms() {
        if let crate::ontology::Axiom::SubPropertyOf(sub, _) = a {
            if ont.superproperties_of(*sub).any(|p| *p == f.p)
                && idx.objects(*sub, f.s).contains(&f.o)
            {
                return true;
            }
        }
    }
    let fo = resolve(f.o);
    // Symmetric: (o, p, s') with s' resolving to f.s.
    if ont.is_symmetric(f.p) {
        if let Some(oe) = fo {
            if idx
                .objects(f.p, oe)
                .iter()
                .any(|v| resolve(*v) == Some(f.s))
            {
                return true;
            }
        }
    }
    // Inverse: (o, q, s') for either orientation.
    for (p, q) in ont.inverse_pairs() {
        let counterpart = if f.p == *p {
            Some(*q)
        } else if f.p == *q {
            Some(*p)
        } else {
            None
        };
        if let (Some(cp), Some(oe)) = (counterpart, fo) {
            if idx.objects(cp, oe).iter().any(|v| resolve(*v) == Some(f.s)) {
                return true;
            }
        }
    }
    // Transitive: (f.s, p, y) and (y, p, f.o) with y ≠ f.o and y ≠ f.s
    // (self-joins through f itself are fine — both premises must exist
    // in idx, which no longer contains overdeleted facts).
    if ont.is_transitive(f.p) {
        for y in idx.objects(f.p, f.s) {
            if let Some(ye) = resolve(*y) {
                if idx.objects(f.p, ye).contains(&f.o) {
                    return true;
                }
            }
        }
    }
    false
}

/// Naive fixpoint: apply every rule to every fact until nothing new.
/// Returns only the *derived* facts (base excluded).
pub fn naive(base: &[Triple], ont: &Ontology, resolve: Resolver<'_>) -> HashSet<Triple> {
    let mut idx = TripleIndex::new();
    for t in base {
        idx.insert(*t, resolve);
    }
    loop {
        let mut new = Vec::new();
        for t in idx.all.iter() {
            for d in derive_from(t, &idx, ont, resolve) {
                if !idx.contains(&d) {
                    new.push(d);
                }
            }
        }
        if new.is_empty() {
            break;
        }
        for d in new {
            idx.insert(d, resolve);
        }
    }
    let base_set: HashSet<Triple> = base.iter().copied().collect();
    idx.all.difference(&base_set).copied().collect()
}

/// Semi-naive fixpoint: only facts new in the previous round feed the
/// next. Returns only the derived facts.
pub fn seminaive(base: &[Triple], ont: &Ontology, resolve: Resolver<'_>) -> HashSet<Triple> {
    let mut idx = TripleIndex::new();
    let mut delta: Vec<Triple> = Vec::new();
    for t in base {
        if idx.insert(*t, resolve) {
            delta.push(*t);
        }
    }
    while !delta.is_empty() {
        let mut next: HashSet<Triple> = HashSet::new();
        for t in &delta {
            for d in derive_from(t, &idx, ont, resolve) {
                if !idx.contains(&d) {
                    next.insert(d);
                }
            }
        }
        for d in &next {
            idx.insert(*d, resolve);
        }
        delta = next.into_iter().collect();
    }
    let base_set: HashSet<Triple> = base.iter().copied().collect();
    idx.all.difference(&base_set).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::Axiom;
    use crate::triple::id_resolver;
    use fenestra_base::symbol::Symbol;
    use fenestra_base::value::EntityId;

    fn e(n: u64) -> EntityId {
        EntityId(n)
    }

    fn taxonomy() -> Ontology {
        Ontology::from_axioms([
            Axiom::SubClassOf(Value::str("toy_cars"), Value::str("toys")),
            Axiom::SubClassOf(Value::str("toys"), Value::str("products")),
        ])
    }

    #[test]
    fn subclass_derivation() {
        let base = vec![Triple::new(e(1), "type", "toy_cars")];
        let derived = naive(&base, &taxonomy(), &id_resolver);
        assert_eq!(derived.len(), 2);
        assert!(derived.contains(&Triple::new(e(1), "type", "toys")));
        assert!(derived.contains(&Triple::new(e(1), "type", "products")));
    }

    #[test]
    fn transitive_closure() {
        let p = Symbol::intern("part_of");
        let ont = Ontology::from_axioms([Axiom::Transitive(p)]);
        let base: Vec<Triple> = (1..5)
            .map(|i| Triple::new(e(i), p, Value::Id(e(i + 1))))
            .collect();
        let derived = naive(&base, &ont, &id_resolver);
        // Chain of 4 edges: closure has C(4,2)+... pairs (i<j): 10 total,
        // 4 base → 6 derived.
        assert_eq!(derived.len(), 6);
        assert!(derived.contains(&Triple::new(e(1), p, Value::Id(e(5)))));
    }

    #[test]
    fn symmetric_and_inverse() {
        let adj = Symbol::intern("adjacent");
        let part = Symbol::intern("part_of");
        let has = Symbol::intern("has_part");
        let ont = Ontology::from_axioms([Axiom::Symmetric(adj), Axiom::InverseOf(part, has)]);
        let base = vec![
            Triple::new(e(1), adj, Value::Id(e(2))),
            Triple::new(e(3), part, Value::Id(e(4))),
            Triple::new(e(5), has, Value::Id(e(6))),
        ];
        let derived = naive(&base, &ont, &id_resolver);
        assert!(derived.contains(&Triple::new(e(2), adj, Value::Id(e(1)))));
        assert!(derived.contains(&Triple::new(e(4), has, Value::Id(e(3)))));
        assert!(derived.contains(&Triple::new(e(6), part, Value::Id(e(5)))));
    }

    #[test]
    fn domain_and_range() {
        let sells = Symbol::intern("sells");
        let ont = Ontology::from_axioms([
            Axiom::Domain(sells, Value::str("shop")),
            Axiom::Range(sells, Value::str("product")),
        ]);
        let base = vec![Triple::new(e(1), sells, Value::Id(e(2)))];
        let derived = naive(&base, &ont, &id_resolver);
        assert!(derived.contains(&Triple::new(e(1), "type", "shop")));
        assert!(derived.contains(&Triple::new(e(2), "type", "product")));
    }

    #[test]
    fn subproperty_lifts_facts() {
        let p = Symbol::intern("manages");
        let q = Symbol::intern("works_with");
        let ont = Ontology::from_axioms([Axiom::SubPropertyOf(p, q)]);
        let base = vec![Triple::new(e(1), p, Value::Id(e(2)))];
        let derived = naive(&base, &ont, &id_resolver);
        assert!(derived.contains(&Triple::new(e(1), q, Value::Id(e(2)))));
    }

    #[test]
    fn seminaive_equals_naive() {
        let p = Symbol::intern("part_of");
        let ont = Ontology::from_axioms([
            Axiom::Transitive(p),
            Axiom::SubClassOf(Value::str("a"), Value::str("b")),
            Axiom::Domain(p, Value::str("component")),
        ]);
        let base = vec![
            Triple::new(e(1), p, Value::Id(e(2))),
            Triple::new(e(2), p, Value::Id(e(3))),
            Triple::new(e(3), p, Value::Id(e(1))), // cycle!
            Triple::new(e(7), "type", "a"),
        ];
        let a = naive(&base, &ont, &id_resolver);
        let b = seminaive(&base, &ont, &id_resolver);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn derivable_one_step_agrees_with_membership() {
        let ont = taxonomy();
        let base = vec![Triple::new(e(1), "type", "toy_cars")];
        let derived = seminaive(&base, &ont, &id_resolver);
        let mut idx = TripleIndex::new();
        for t in base.iter().chain(derived.iter()) {
            idx.insert(*t, &id_resolver);
        }
        for d in &derived {
            assert!(derivable_one_step(d, &idx, &ont, &id_resolver), "{d:?}");
        }
        let bogus = Triple::new(e(2), "type", "products");
        assert!(!derivable_one_step(&bogus, &idx, &ont, &id_resolver));
    }
}
