//! Synchronizing derived facts into the temporal store.
//!
//! The paper's reasoner "augments the answers to both stream processing
//! rules and one-time queries": we realize this by materializing the
//! ontology's consequences *into the store itself*, tagged with
//! `Provenance::Derived`, so every consumer (queries, stream–state
//! operators) sees inferred facts alongside asserted ones — with their
//! own validity intervals.

use crate::materialize::seminaive;
use crate::ontology::Ontology;
use crate::triple::{type_attr, Triple};
use fenestra_base::error::Result;
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use fenestra_temporal::{Provenance, TemporalStore};
use std::collections::HashSet;

/// Provenance tag for facts written by the reasoner.
pub fn derived_provenance() -> Provenance {
    Provenance::Derived(Symbol::intern("ontology"))
}

/// Extract the reasoning-relevant base triples from the store's
/// current state (facts whose attribute an axiom mentions, excluding
/// previously derived facts).
pub fn base_triples(store: &TemporalStore, ont: &Ontology) -> Vec<Triple> {
    let relevant = ont.relevant_properties();
    let mut out = Vec::new();
    for attr in &relevant {
        for f in store.current().attr_facts(*attr) {
            if !f.provenance.is_derived() {
                out.push(Triple::new(f.fact.entity, f.fact.attr, f.fact.value));
            }
        }
    }
    out
}

/// Materialize the ontology's consequences into the store at time `t`:
/// newly entailed facts are asserted (with derived provenance, valid
/// from `t`), and previously derived facts that are no longer entailed
/// are retracted (their validity closed at `t`).
///
/// Returns `(asserted, retracted)` counts. Idempotent: a second sync
/// with unchanged state does nothing.
pub fn sync_store(
    store: &mut TemporalStore,
    ont: &Ontology,
    t: Timestamp,
) -> Result<(usize, usize)> {
    // Resolve string-valued entity references through the directory.
    let names: std::collections::HashMap<Symbol, fenestra_base::value::EntityId> = {
        let mut m = std::collections::HashMap::new();
        let relevant = ont.relevant_properties();
        for attr in &relevant {
            for f in store.current().attr_facts(*attr) {
                if let Value::Str(s) = f.fact.value {
                    if let Some(e) = store.lookup_entity(s) {
                        m.insert(s, e);
                    }
                }
            }
        }
        m
    };
    let resolve = move |v: Value| match v {
        Value::Id(e) => Some(e),
        Value::Str(s) => names.get(&s).copied(),
        _ => None,
    };

    let base = base_triples(store, ont);
    let entailed: HashSet<Triple> = seminaive(&base, ont, &resolve)
        .into_iter()
        // Don't re-derive facts that are explicitly asserted.
        .filter(|d| !base.contains(d))
        .collect();

    // Current derived facts in the store.
    let mut existing: HashSet<Triple> = HashSet::new();
    let relevant = ont.relevant_properties();
    let mut derived_attrs: Vec<Symbol> = relevant.iter().copied().collect();
    if !derived_attrs.contains(&type_attr()) {
        derived_attrs.push(type_attr());
    }
    for attr in &derived_attrs {
        for f in store.current().attr_facts(*attr) {
            if f.provenance.is_derived() {
                existing.insert(Triple::new(f.fact.entity, f.fact.attr, f.fact.value));
            }
        }
    }

    let mut asserted = 0;
    for d in entailed.difference(&existing) {
        store.assert_with(d.s, d.p, d.o, t, derived_provenance())?;
        asserted += 1;
    }
    let mut retracted = 0;
    for d in existing.difference(&entailed) {
        store.retract_at(d.s, d.p, d.o, t)?;
        retracted += 1;
    }
    Ok((asserted, retracted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::Axiom;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    fn taxonomy() -> Ontology {
        Ontology::from_axioms([
            Axiom::SubClassOf(Value::str("toy_cars"), Value::str("toys")),
            Axiom::SubClassOf(Value::str("toys"), Value::str("products")),
        ])
    }

    #[test]
    fn sync_asserts_derived_memberships() {
        let mut store = TemporalStore::new();
        let p1 = store.named_entity("p1");
        store.assert_at(p1, "type", "toy_cars", ts(1)).unwrap();
        let (a, r) = sync_store(&mut store, &taxonomy(), ts(2)).unwrap();
        assert_eq!((a, r), (2, 0));
        assert!(store.current().holds(p1, "type", "toys"));
        assert!(store.current().holds(p1, "type", "products"));
        // Derived provenance.
        let derived: Vec<_> = store
            .current()
            .attr_facts("type")
            .filter(|f| f.provenance.is_derived())
            .collect();
        assert_eq!(derived.len(), 2);
        // Idempotent.
        let (a, r) = sync_store(&mut store, &taxonomy(), ts(3)).unwrap();
        assert_eq!((a, r), (0, 0));
    }

    #[test]
    fn sync_retracts_when_support_disappears() {
        let mut store = TemporalStore::new();
        let p1 = store.named_entity("p1");
        store.assert_at(p1, "type", "toy_cars", ts(1)).unwrap();
        sync_store(&mut store, &taxonomy(), ts(2)).unwrap();
        // Reclassify: no longer a toy car.
        store.retract_at(p1, "type", "toy_cars", ts(5)).unwrap();
        let (a, r) = sync_store(&mut store, &taxonomy(), ts(5)).unwrap();
        assert_eq!((a, r), (0, 2));
        assert!(!store.current().holds(p1, "type", "toys"));
        // But history remembers the derived memberships' validity.
        assert!(store.as_of(ts(3)).holds(p1, "type", "products"));
        let h = store.history(p1, "type");
        assert_eq!(h.len(), 3, "one asserted + two derived intervals");
    }

    #[test]
    fn string_object_references_resolve_via_directory() {
        // part_of with string-named rooms: transitive closure through
        // the entity directory.
        let part = Symbol::intern("part_of");
        let ont = Ontology::from_axioms([Axiom::Transitive(part)]);
        let mut store = TemporalStore::new();
        let wing = store.named_entity("wing");
        let building = store.named_entity("building");
        let room = store.named_entity("room1");
        let _ = building;
        store.assert_at(room, "part_of", "wing", ts(1)).unwrap();
        store.assert_at(wing, "part_of", "building", ts(1)).unwrap();
        sync_store(&mut store, &ont, ts(2)).unwrap();
        assert!(store.current().holds(room, "part_of", "building"));
    }

    #[test]
    fn explicit_facts_not_duplicated() {
        let mut store = TemporalStore::new();
        let p1 = store.named_entity("p1");
        store.assert_at(p1, "type", "toy_cars", ts(1)).unwrap();
        // Explicitly assert what would be derived.
        store.assert_at(p1, "type", "toys", ts(1)).unwrap();
        let (a, _r) = sync_store(&mut store, &taxonomy(), ts(2)).unwrap();
        assert_eq!(a, 1, "only `products` needed deriving");
    }
}
