//! Incremental materialization maintenance (delete-and-rederive).
//!
//! Maintains `base ∪ derived` under single-fact insertions and
//! deletions:
//!
//! * **insert** — semi-naive propagation from the new fact only;
//! * **delete** — DRed: overdelete everything transitively supported
//!   by the deleted fact, then rederive overdeleted facts that remain
//!   derivable from the surviving facts. DRed is exact even for
//!   recursive rules (transitivity over cycles), where counting-based
//!   maintenance is not.

use crate::materialize::{derivable_one_step, derive_from};
use crate::ontology::Ontology;
use crate::triple::{Triple, TripleIndex};
use fenestra_base::value::{EntityId, Value};
use std::collections::HashSet;

/// Shared resolver type (boxed so the materializer is storable).
pub type BoxedResolver = Box<dyn Fn(Value) -> Option<EntityId> + Send + Sync>;

/// Incrementally maintained materialization.
pub struct IncrementalMaterializer {
    ont: Ontology,
    resolve: BoxedResolver,
    base: HashSet<Triple>,
    derived: HashSet<Triple>,
    idx: TripleIndex,
}

impl IncrementalMaterializer {
    /// Empty materializer over `ont`, resolving entity references with
    /// `resolve` (use `Box::new(fenestra_reason::triple::id_resolver)`
    /// when only `Value::Id` references entities).
    pub fn new(ont: Ontology, resolve: BoxedResolver) -> IncrementalMaterializer {
        IncrementalMaterializer {
            ont,
            resolve,
            base: HashSet::new(),
            derived: HashSet::new(),
            idx: TripleIndex::new(),
        }
    }

    /// The base facts.
    pub fn base(&self) -> &HashSet<Triple> {
        &self.base
    }

    /// The currently derived facts (excluding base).
    pub fn derived(&self) -> &HashSet<Triple> {
        &self.derived
    }

    /// Whether the fact holds (base or derived).
    pub fn holds(&self, t: &Triple) -> bool {
        self.idx.contains(t)
    }

    /// Insert a base fact; returns the newly derived facts.
    pub fn insert(&mut self, t: Triple) -> Vec<Triple> {
        if !self.base.insert(t) {
            return Vec::new();
        }
        // If it was previously derived, it is now (also) base; no new
        // derivations need computing beyond the ordinary propagation.
        self.derived.remove(&t);
        let newly_indexed = self.idx.insert(t, &*self.resolve);
        let mut added = Vec::new();
        if newly_indexed {
            self.propagate(vec![t], &mut added);
        }
        added
    }

    /// Remove a base fact; returns the derived facts that were
    /// retracted as a consequence.
    pub fn remove(&mut self, t: &Triple) -> Vec<Triple> {
        if !self.base.remove(t) {
            return Vec::new();
        }
        // Overdelete: everything transitively supported by t.
        let mut over: HashSet<Triple> = HashSet::new();
        let mut frontier = vec![*t];
        while let Some(f) = frontier.pop() {
            for d in derive_from(&f, &self.idx, &self.ont, &*self.resolve) {
                if self.derived.contains(&d) && !over.contains(&d) && d != *t {
                    over.insert(d);
                    frontier.push(d);
                }
            }
        }
        // Remove t and the overdeleted facts from the index.
        if !self.derived.contains(t) {
            self.idx.remove(t, &*self.resolve);
        }
        for f in &over {
            self.idx.remove(f, &*self.resolve);
            self.derived.remove(f);
        }
        // Rederive: overdeleted facts — and the removed base fact
        // itself, which may still be entailed by the remainder — that
        // survive as derivations.
        let mut candidates: HashSet<Triple> = over.clone();
        candidates.insert(*t);
        loop {
            let mut progress = false;
            let still_missing: Vec<Triple> = candidates
                .iter()
                .filter(|f| !self.idx.contains(f))
                .copied()
                .collect();
            for f in still_missing {
                if derivable_one_step(&f, &self.idx, &self.ont, &*self.resolve) {
                    self.idx.insert(f, &*self.resolve);
                    self.derived.insert(f);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        // Anything a rederived fact supports was either never deleted
        // or sits inside `candidates` and was handled by the loop.
        let retracted: Vec<Triple> = over.into_iter().filter(|f| !self.idx.contains(f)).collect();
        retracted
    }

    fn propagate(&mut self, seed: Vec<Triple>, added: &mut Vec<Triple>) {
        let mut delta = seed;
        while !delta.is_empty() {
            let mut next = Vec::new();
            for t in &delta {
                for d in derive_from(t, &self.idx, &self.ont, &*self.resolve) {
                    if !self.idx.contains(&d) {
                        self.idx.insert(d, &*self.resolve);
                        self.derived.insert(d);
                        added.push(d);
                        next.push(d);
                    }
                }
            }
            delta = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::naive;
    use crate::ontology::Axiom;
    use crate::triple::id_resolver;
    use fenestra_base::symbol::Symbol;

    fn e(n: u64) -> EntityId {
        EntityId(n)
    }

    fn mk(ont: Ontology) -> IncrementalMaterializer {
        IncrementalMaterializer::new(ont, Box::new(id_resolver))
    }

    fn check_consistency(m: &IncrementalMaterializer, ont: &Ontology) {
        let base: Vec<Triple> = m.base().iter().copied().collect();
        let expected = naive(&base, ont, &id_resolver);
        assert_eq!(
            m.derived(),
            &expected,
            "incremental materialization drifted from recompute"
        );
    }

    #[test]
    fn insert_propagates() {
        let ont = Ontology::from_axioms([Axiom::SubClassOf(
            Value::str("toys"),
            Value::str("products"),
        )]);
        let mut m = mk(ont.clone());
        let added = m.insert(Triple::new(e(1), "type", "toys"));
        assert_eq!(added, vec![Triple::new(e(1), "type", "products")]);
        assert!(m.holds(&Triple::new(e(1), "type", "products")));
        check_consistency(&m, &ont);
    }

    #[test]
    fn delete_retracts_unsupported() {
        let ont = Ontology::from_axioms([Axiom::SubClassOf(
            Value::str("toys"),
            Value::str("products"),
        )]);
        let mut m = mk(ont.clone());
        let t = Triple::new(e(1), "type", "toys");
        m.insert(t);
        let retracted = m.remove(&t);
        assert_eq!(retracted, vec![Triple::new(e(1), "type", "products")]);
        assert!(m.derived().is_empty());
        check_consistency(&m, &ont);
    }

    #[test]
    fn delete_keeps_alternatively_supported() {
        // Two subclass paths to "products": deleting one keeps the
        // derived membership alive.
        let ont = Ontology::from_axioms([
            Axiom::SubClassOf(Value::str("toys"), Value::str("products")),
            Axiom::SubClassOf(Value::str("games"), Value::str("products")),
        ]);
        let mut m = mk(ont.clone());
        m.insert(Triple::new(e(1), "type", "toys"));
        m.insert(Triple::new(e(1), "type", "games"));
        let retracted = m.remove(&Triple::new(e(1), "type", "toys"));
        assert!(retracted.is_empty(), "products membership still supported");
        assert!(m.holds(&Triple::new(e(1), "type", "products")));
        check_consistency(&m, &ont);
    }

    #[test]
    fn transitive_cycle_delete_is_exact() {
        // Counting-based maintenance famously fails here; DRed must not.
        let p = Symbol::intern("linked");
        let ont = Ontology::from_axioms([Axiom::Transitive(p)]);
        let mut m = mk(ont.clone());
        let edges = [
            Triple::new(e(1), p, Value::Id(e(2))),
            Triple::new(e(2), p, Value::Id(e(3))),
            Triple::new(e(3), p, Value::Id(e(1))),
        ];
        for t in edges {
            m.insert(t);
        }
        check_consistency(&m, &ont);
        m.remove(&edges[0]);
        check_consistency(&m, &ont);
        // Path 2→3→1 survives.
        assert!(m.holds(&Triple::new(e(2), p, Value::Id(e(1)))));
        assert!(!m.holds(&Triple::new(e(1), p, Value::Id(e(3)))));
    }

    #[test]
    fn base_fact_that_is_also_derived_survives_deletion_of_support() {
        let ont = Ontology::from_axioms([Axiom::SubClassOf(Value::str("a"), Value::str("b"))]);
        let mut m = mk(ont.clone());
        m.insert(Triple::new(e(1), "type", "a"));
        // (1, type, b) is derived; now also assert it as base.
        m.insert(Triple::new(e(1), "type", "b"));
        m.remove(&Triple::new(e(1), "type", "a"));
        assert!(
            m.holds(&Triple::new(e(1), "type", "b")),
            "explicit base fact must survive"
        );
        check_consistency(&m, &ont);
    }

    #[test]
    fn randomized_ops_stay_consistent() {
        let p = Symbol::intern("part_of");
        let ont = Ontology::from_axioms([
            Axiom::Transitive(p),
            Axiom::SubClassOf(Value::str("c1"), Value::str("c2")),
            Axiom::SubClassOf(Value::str("c2"), Value::str("c3")),
            Axiom::Domain(p, Value::str("c1")),
        ]);
        let mut m = mk(ont.clone());
        // Deterministic pseudo-random walk.
        let mut x: u64 = 12345;
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut pool: Vec<Triple> = Vec::new();
        for i in 0..120 {
            let a = step() % 5;
            let b = step() % 5;
            let t = if step() % 3 == 0 {
                Triple::new(e(a), "type", "c1")
            } else {
                Triple::new(e(a), p, Value::Id(e(b)))
            };
            if step() % 4 == 0 && !pool.is_empty() {
                let victim = pool[(step() as usize) % pool.len()];
                m.remove(&victim);
                pool.retain(|x| *x != victim);
            } else {
                m.insert(t);
                if !pool.contains(&t) {
                    pool.push(t);
                }
            }
            if i % 10 == 9 {
                check_consistency(&m, &ont);
            }
        }
        check_consistency(&m, &ont);
    }
}
