//! Triples and the index the reasoner joins over.

use fenestra_base::symbol::Symbol;
use fenestra_base::value::{EntityId, Value};
use std::collections::{HashMap, HashSet};

/// A reasoning triple: exactly an EAV fact without temporal annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject.
    pub s: EntityId,
    /// Predicate (attribute).
    pub p: Symbol,
    /// Object.
    pub o: Value,
}

impl Triple {
    /// Construct a triple.
    pub fn new(s: EntityId, p: impl Into<Symbol>, o: impl Into<Value>) -> Triple {
        Triple {
            s,
            p: p.into(),
            o: o.into(),
        }
    }
}

/// The reserved predicate for class membership.
pub fn type_attr() -> Symbol {
    Symbol::intern("type")
}

/// Resolves an object value to the entity it references, if any.
/// `Value::Id` resolves directly; hosts may also resolve `Value::Str`
/// through their entity directory.
pub type Resolver<'a> = &'a dyn Fn(Value) -> Option<EntityId>;

/// The trivial resolver: only `Value::Id` references entities.
pub fn id_resolver(v: Value) -> Option<EntityId> {
    v.as_id()
}

/// Join index over a set of triples.
#[derive(Debug, Default)]
pub struct TripleIndex {
    /// All triples.
    pub all: HashSet<Triple>,
    /// `(p, s) → objects`.
    by_ps: HashMap<(Symbol, EntityId), Vec<Value>>,
    /// `(p, object-entity) → subjects` (object resolved to an entity).
    by_po: HashMap<(Symbol, EntityId), Vec<EntityId>>,
}

impl TripleIndex {
    /// Empty index.
    pub fn new() -> TripleIndex {
        TripleIndex::default()
    }

    /// Insert a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple, resolve: Resolver<'_>) -> bool {
        if !self.all.insert(t) {
            return false;
        }
        self.by_ps.entry((t.p, t.s)).or_default().push(t.o);
        if let Some(oe) = resolve(t.o) {
            self.by_po.entry((t.p, oe)).or_default().push(t.s);
        }
        true
    }

    /// Remove a triple; returns `false` if absent.
    pub fn remove(&mut self, t: &Triple, resolve: Resolver<'_>) -> bool {
        if !self.all.remove(t) {
            return false;
        }
        if let Some(v) = self.by_ps.get_mut(&(t.p, t.s)) {
            if let Some(i) = v.iter().position(|x| *x == t.o) {
                v.swap_remove(i);
            }
            if v.is_empty() {
                self.by_ps.remove(&(t.p, t.s));
            }
        }
        if let Some(oe) = resolve(t.o) {
            if let Some(v) = self.by_po.get_mut(&(t.p, oe)) {
                if let Some(i) = v.iter().position(|x| *x == t.s) {
                    v.swap_remove(i);
                }
                if v.is_empty() {
                    self.by_po.remove(&(t.p, oe));
                }
            }
        }
        true
    }

    /// Whether the triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.all.contains(t)
    }

    /// Objects of `(s, p, ?)`.
    pub fn objects(&self, p: Symbol, s: EntityId) -> &[Value] {
        self.by_ps.get(&(p, s)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Subjects of `(?, p, o)` where `o` resolves to entity `oe`.
    pub fn subjects(&self, p: Symbol, oe: EntityId) -> &[EntityId] {
        self.by_po
            .get(&(p, oe))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_round_trip() {
        let mut idx = TripleIndex::new();
        let t = Triple::new(EntityId(1), "p", Value::Id(EntityId(2)));
        assert!(idx.insert(t, &id_resolver));
        assert!(!idx.insert(t, &id_resolver), "duplicate");
        assert!(idx.contains(&t));
        assert_eq!(idx.objects(Symbol::intern("p"), EntityId(1)).len(), 1);
        assert_eq!(
            idx.subjects(Symbol::intern("p"), EntityId(2)),
            &[EntityId(1)]
        );
        assert!(idx.remove(&t, &id_resolver));
        assert!(!idx.remove(&t, &id_resolver));
        assert!(idx.is_empty());
        assert!(idx.subjects(Symbol::intern("p"), EntityId(2)).is_empty());
    }

    #[test]
    fn non_entity_objects_skip_po_index() {
        let mut idx = TripleIndex::new();
        let t = Triple::new(EntityId(1), "name", "alice");
        idx.insert(t, &id_resolver);
        assert_eq!(idx.objects(Symbol::intern("name"), EntityId(1)).len(), 1);
        // No subject index entry since "alice" is not an entity ref.
        assert_eq!(idx.len(), 1);
    }
}
