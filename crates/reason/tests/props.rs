//! Property tests for the reasoner: strategy agreement and incremental
//! maintenance consistency under random ontologies and update streams.

use fenestra_base::symbol::Symbol;
use fenestra_base::value::{EntityId, Value};
use fenestra_reason::materialize::{naive, seminaive};
use fenestra_reason::triple::{id_resolver, Triple};
use fenestra_reason::{Axiom, IncrementalMaterializer, Ontology};
use proptest::prelude::*;

fn class(i: u8) -> Value {
    Value::str(&format!("c{i}"))
}

fn prop_sym(i: u8) -> Symbol {
    Symbol::intern(&format!("p{i}"))
}

/// Random axiom over small class/property domains.
fn axiom_strategy() -> impl Strategy<Value = Axiom> {
    prop_oneof![
        (0..6u8, 0..6u8).prop_map(|(a, b)| Axiom::SubClassOf(class(a), class(b))),
        (0..3u8, 0..3u8).prop_map(|(a, b)| Axiom::SubPropertyOf(prop_sym(a), prop_sym(b))),
        (0..3u8, 0..6u8).prop_map(|(p, c)| Axiom::Domain(prop_sym(p), class(c))),
        (0..3u8, 0..6u8).prop_map(|(p, c)| Axiom::Range(prop_sym(p), class(c))),
        (0..3u8).prop_map(|p| Axiom::Transitive(prop_sym(p))),
        (0..3u8).prop_map(|p| Axiom::Symmetric(prop_sym(p))),
        (0..3u8, 0..3u8).prop_map(|(a, b)| Axiom::InverseOf(prop_sym(a), prop_sym(b))),
    ]
}

/// Random base triple: type memberships and entity-valued properties.
fn triple_strategy() -> impl Strategy<Value = Triple> {
    prop_oneof![
        (0..5u64, 0..6u8).prop_map(|(e, c)| Triple::new(EntityId(e), "type", class(c))),
        (0..5u64, 0..3u8, 0..5u64).prop_map(|(s, p, o)| Triple {
            s: EntityId(s),
            p: prop_sym(p),
            o: Value::Id(EntityId(o))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Semi-naive and naive evaluation always reach the same fixpoint,
    /// for arbitrary (possibly cyclic) ontologies.
    #[test]
    fn seminaive_equals_naive(
        axioms in prop::collection::vec(axiom_strategy(), 0..12),
        base in prop::collection::vec(triple_strategy(), 0..25),
    ) {
        let ont = Ontology::from_axioms(axioms);
        let a = naive(&base, &ont, &id_resolver);
        let b = seminaive(&base, &ont, &id_resolver);
        prop_assert_eq!(a, b);
    }

    /// Incremental maintenance under a random insert/remove trace
    /// always matches recomputation from the surviving base.
    #[test]
    fn incremental_equals_recompute(
        axioms in prop::collection::vec(axiom_strategy(), 0..10),
        trace in prop::collection::vec((triple_strategy(), any::<bool>()), 1..40),
    ) {
        let ont = Ontology::from_axioms(axioms);
        let mut inc = IncrementalMaterializer::new(ont.clone(), Box::new(id_resolver));
        let mut live: Vec<Triple> = Vec::new();
        for (t, insert) in trace {
            if insert || live.is_empty() {
                inc.insert(t);
                if !live.contains(&t) {
                    live.push(t);
                }
            } else {
                // Remove a fact from the live set (or a random absent
                // one — removal of absent facts must be a no-op).
                let idx = (t.s.0 as usize) % live.len();
                let victim = live.remove(idx);
                inc.remove(&victim);
            }
        }
        let expected = seminaive(&live, &ont, &id_resolver);
        // Base facts that are also derivable appear in `expected` only
        // if not in base; filter both sides the same way.
        let got = inc.derived();
        let expected: std::collections::HashSet<Triple> = expected
            .into_iter()
            .filter(|f| !live.contains(f))
            .collect();
        let got: std::collections::HashSet<Triple> = got
            .iter()
            .filter(|f| !live.contains(f))
            .copied()
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// `holds` is consistent with membership in base ∪ derived.
    #[test]
    fn holds_is_membership(
        axioms in prop::collection::vec(axiom_strategy(), 0..8),
        base in prop::collection::vec(triple_strategy(), 0..15),
        probe in triple_strategy(),
    ) {
        let ont = Ontology::from_axioms(axioms);
        let mut inc = IncrementalMaterializer::new(ont, Box::new(id_resolver));
        for t in &base {
            inc.insert(*t);
        }
        let member = inc.base().contains(&probe) || inc.derived().contains(&probe);
        prop_assert_eq!(inc.holds(&probe), member);
    }
}
