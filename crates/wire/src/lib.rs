#![warn(missing_docs)]
//! JSON-lines event interchange for the CLI, external feeds, and the
//! `fenestrad` network server.
//!
//! One event per line:
//!
//! ```json
//! {"stream": "sensors", "ts": 10, "visitor": "alice", "room": "lobby"}
//! ```
//!
//! `stream` and `ts` are reserved keys; every other key becomes a
//! record field. JSON numbers map to `Int` when integral, `Float`
//! otherwise; strings, booleans, and nulls map directly. Nested
//! arrays/objects are rejected (stream records are flat).
//!
//! The `fenestrad` wire protocol adds framing-level reservations on
//! *top-level* request objects: a `"cmd"` key marks a command, and
//! `"op":"ingest"` **without** a `"stream"` key marks a batch ingest
//! frame. Events always carry `stream`, so their field namespace is
//! untouched by the latter (an event field named `op` is fine, even
//! with the value `"ingest"`) — but an event sent to the server cannot
//! use a field named `cmd`.
//!
//! Also home to the [`metrics`] serializer shared by
//! `fenestra run --metrics-json` and the server's `stats` command.
//!
//! # The binary plane and reserved magic
//!
//! `fenestrad` serves a second, binary ingest plane on the same port
//! (see [`binary`]): a connection whose **first four bytes** are the
//! magic `FNB1` speaks length-prefixed CRC32-framed record batches;
//! any other first bytes select this JSONL plane. The three-byte
//! prefix `FNB` is **reserved** for future binary frame-format
//! revisions (`FNB2`, …) — no JSONL request can collide with it
//! because JSONL requests always start with `{`.

use fenestra_base::error::{Error, Result};
use fenestra_base::record::{Event, Record};
use fenestra_base::value::Value;
use serde_json::Value as Json;

pub mod binary;
pub mod metrics;
pub mod repl;

/// Parse one JSONL line into an event.
pub fn event_from_json(line: &str) -> Result<Event> {
    let json: Json =
        serde_json::from_str(line).map_err(|e| Error::Invalid(format!("bad JSON event: {e}")))?;
    event_from_json_value(json)
}

/// Parse an already-decoded JSON value into an event (the batch ingest
/// frame carries events as array elements, not as separate lines).
pub fn event_from_json_value(json: Json) -> Result<Event> {
    let Json::Object(map) = json else {
        return Err(Error::Invalid("event must be a JSON object".into()));
    };
    let mut stream = None;
    let mut ts = None;
    let mut record = Record::new();
    for (k, v) in map {
        match k.as_str() {
            "stream" => match v {
                Json::String(s) => stream = Some(s),
                other => {
                    return Err(Error::Invalid(format!(
                        "`stream` must be a string, got {other}"
                    )))
                }
            },
            "ts" => match v {
                Json::Number(n) if n.as_u64().is_some() => ts = Some(n.as_u64().expect("checked")),
                other => {
                    return Err(Error::Invalid(format!(
                        "`ts` must be a non-negative integer, got {other}"
                    )))
                }
            },
            _ => {
                record.set(k.as_str(), json_to_value(&k, v)?);
            }
        }
    }
    let stream = stream.ok_or_else(|| Error::Invalid("event missing `stream`".into()))?;
    let ts = ts.ok_or_else(|| Error::Invalid("event missing `ts`".into()))?;
    Ok(Event::new(stream.as_str(), ts, record))
}

fn json_to_value(key: &str, v: Json) -> Result<Value> {
    Ok(match v {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(b),
        Json::Number(n) => {
            if let Some(i) = n.as_i64() {
                Value::Int(i)
            } else {
                Value::Float(n.as_f64().unwrap_or(f64::NAN))
            }
        }
        Json::String(s) => Value::str(&s),
        Json::Array(_) | Json::Object(_) => {
            return Err(Error::Invalid(format!(
                "field `{key}`: nested JSON not supported in stream records"
            )))
        }
    })
}

/// Serialize an event back to a JSONL line (inverse of
/// [`event_from_json`] up to key order).
pub fn event_to_json(ev: &Event) -> String {
    let mut map = serde_json::Map::new();
    map.insert("stream".into(), Json::String(ev.stream.as_str().into()));
    map.insert("ts".into(), Json::Number(ev.ts.millis().into()));
    for (k, v) in ev.record.iter() {
        map.insert(k.as_str().into(), value_to_json(v));
    }
    Json::Object(map).to_string()
}

/// Map one record value to its JSON representation.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Number((*i).into()),
        Value::Float(f) => serde_json::Number::from_f64(*f)
            .map(Json::Number)
            .unwrap_or(Json::Null),
        Value::Str(s) => Json::String(s.as_str().into()),
        Value::Id(e) => Json::String(format!("#{}", e.0)),
        Value::Time(t) => Json::Number(t.millis().into()),
    }
}

/// Parse a whole JSONL document (one event per non-empty line).
/// Errors name the offending line: `line 3: bad JSON event: …`.
pub fn events_from_jsonl(src: &str) -> Result<Vec<Event>> {
    src.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .map(|(n, l)| event_from_json(l).map_err(|e| Error::Invalid(format!("line {n}: {e}"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::time::Timestamp;

    #[test]
    fn parse_basic_event() {
        let ev = event_from_json(
            r#"{"stream":"sensors","ts":10,"visitor":"alice","n":3,"x":2.5,"ok":true,"gone":null}"#,
        )
        .unwrap();
        assert_eq!(ev.stream.as_str(), "sensors");
        assert_eq!(ev.ts, Timestamp::new(10));
        assert_eq!(ev.get("visitor"), Some(&Value::str("alice")));
        assert_eq!(ev.get("n"), Some(&Value::Int(3)));
        assert_eq!(ev.get("x"), Some(&Value::Float(2.5)));
        assert_eq!(ev.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(ev.get("gone"), Some(&Value::Null));
    }

    #[test]
    fn round_trip() {
        let ev = event_from_json(r#"{"stream":"s","ts":7,"a":1,"b":"x"}"#).unwrap();
        let back = event_from_json(&event_to_json(&ev)).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn rejects_malformed() {
        assert!(event_from_json("not json").is_err());
        assert!(event_from_json("[1,2]").is_err());
        assert!(event_from_json(r#"{"ts":1}"#).is_err(), "missing stream");
        assert!(event_from_json(r#"{"stream":"s"}"#).is_err(), "missing ts");
        assert!(event_from_json(r#"{"stream":"s","ts":-1}"#).is_err());
        assert!(event_from_json(r#"{"stream":"s","ts":1,"v":[1]}"#).is_err());
        assert!(event_from_json(r#"{"stream":1,"ts":1}"#).is_err());
    }

    #[test]
    fn jsonl_with_comments_and_blanks() {
        let src =
            "\n# header comment\n{\"stream\":\"s\",\"ts\":1}\n\n{\"stream\":\"s\",\"ts\":2}\n";
        let evs = events_from_jsonl(src).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].ts, Timestamp::new(2));
    }

    #[test]
    fn jsonl_errors_carry_line_numbers() {
        let src = "{\"stream\":\"s\",\"ts\":1}\n# comment\n\n{\"stream\":\"s\"}\n";
        let err = events_from_jsonl(src).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "got: {msg}");
        let err = events_from_jsonl("nonsense").unwrap_err();
        assert!(err.to_string().contains("line 1"), "got: {err}");
    }
}
