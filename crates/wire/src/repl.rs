//! The replication wire protocol: length-prefixed binary frames
//! shipped from a leader's per-shard WAL segments to warm followers.
//!
//! Framing is `[len: u32 BE][kind: u8][body: len-1 bytes]` on a plain
//! TCP stream, one conversation per follower:
//!
//! ```text
//! follower                          leader
//!    | -- Hello{epoch, shards, resume} -> |
//!    | <- Welcome{epoch, shards} -------- |   (or Fenced{epoch})
//!    | <- Snapshot{shard, gen, bytes} --- |   (per shard needing bootstrap)
//!    | <- Frames{shard, gen, offset, ...} |   (raw CRC-framed WAL bytes)
//!    | <- Rotate{shard, new_gen} -------- |   (segment rotation committed)
//!    | <- Heartbeat{epoch, positions} --- |   (liveness + lag reference)
//!    | -- Ack{shard, gen, offset} ------> |   (applied position, lag echo)
//!    | -- Covered{shard, gen, offset} --> |   (applied *and fsynced* position)
//! ```
//!
//! `Frames` bodies are the leader's segment bytes **verbatim** — the
//! same `[len][crc][payload]` frames the leader's own recovery replays
//! — so a follower appends them to identically-named local segments
//! and its restart is indistinguishable from a leader restart.
//!
//! Every leader→follower data frame carries the leader's fencing
//! `epoch`. Promotion bumps the epoch (persisted on the promoted node
//! before it accepts writes), and both ends refuse the stale side: a
//! follower disconnects from a leader whose epoch is *below* its own
//! (the demoted ex-leader), and a leader answers a Hello from a
//! higher-epoch node with `Fenced` — the signal that it has itself
//! been superseded.

use fenestra_base::error::{Error, Result};
use std::io::{Read, Write};

/// Cap on a single replication frame (the bootstrap snapshot is the
/// only large one). Refusing oversized lengths keeps a corrupt or
/// hostile peer from forcing a giant allocation.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// A follower's resume position for one shard: it already holds the
/// leader's segment `gen` up to byte `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPosition {
    /// Shard index.
    pub shard: u32,
    /// Segment generation the follower is on.
    pub gen: u64,
    /// Bytes of that segment the follower holds (valid frames).
    pub offset: u64,
}

/// One replication protocol frame. See the module docs for the
/// conversation shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplFrame {
    /// Follower → leader greeting: its persisted epoch, its configured
    /// shard count, and per-shard resume positions (empty on first
    /// contact or after a local wipe — the leader then bootstraps).
    Hello {
        /// The follower's persisted fencing epoch.
        epoch: u64,
        /// The follower's shard count (must match the leader's).
        shards: u32,
        /// Per-shard resume positions.
        resume: Vec<ShardPosition>,
    },
    /// Leader → follower: handshake accepted.
    Welcome {
        /// The leader's fencing epoch. A follower whose own epoch is
        /// higher must disconnect (the leader is stale); one whose
        /// epoch is lower adopts this value and re-bootstraps.
        epoch: u64,
        /// The leader's shard count.
        shards: u32,
    },
    /// Either direction: the receiver's epoch proves the sender stale.
    /// A leader sends it in place of `Welcome`; carrying the refusing
    /// side's epoch lets the stale node log how far behind it is.
    Fenced {
        /// The refusing side's (higher) epoch.
        epoch: u64,
    },
    /// Leader → follower: a bootstrap snapshot for one shard. The
    /// follower replaces that shard's state wholesale and starts a
    /// fresh segment at `gen`.
    Snapshot {
        /// Shard index.
        shard: u32,
        /// The WAL generation continuing this snapshot.
        gen: u64,
        /// The leader's epoch.
        epoch: u64,
        /// The snapshot file bytes, verbatim.
        bytes: Vec<u8>,
    },
    /// Leader → follower: raw committed WAL frames for one shard,
    /// starting at byte `offset` of segment `gen`.
    Frames {
        /// Shard index.
        shard: u32,
        /// Segment generation.
        gen: u64,
        /// Byte offset these frames start at.
        offset: u64,
        /// The leader's epoch.
        epoch: u64,
        /// Leader wall-clock micros at ship time, echoed in the ack —
        /// the leader's ship→apply lag histogram feeds on it.
        sent_at_us: u64,
        /// Raw `[len][crc][payload]` segment bytes.
        bytes: Vec<u8>,
    },
    /// Leader → follower: segment rotation committed on the leader
    /// (the covering snapshot landed). The follower checkpoints its
    /// own shard and switches to segment `new_gen`.
    Rotate {
        /// Shard index.
        shard: u32,
        /// The new segment generation.
        new_gen: u64,
        /// The leader's epoch.
        epoch: u64,
    },
    /// Leader → follower: liveness plus the leader's current per-shard
    /// write positions, the reference for the follower's lag gauges.
    Heartbeat {
        /// The leader's epoch.
        epoch: u64,
        /// The leader's current (shard, gen, segment length) triples.
        positions: Vec<ShardPosition>,
    },
    /// Follower → leader: this shard is applied *and durable* locally
    /// through byte `offset` of segment `gen`.
    Ack {
        /// The acknowledged position.
        position: ShardPosition,
        /// The `sent_at_us` of the Frames batch this ack covers (0
        /// when acking a snapshot bootstrap).
        echo_us: u64,
    },
    /// Follower → leader: a *coverage claim* — every WAL byte of this
    /// shard up to and including `offset` of segment `gen` (and all of
    /// every earlier generation) is applied **and fsynced** on the
    /// follower's disk. Synchronous ack mode (`--sync-replicas N`)
    /// counts only these frames when deciding whether a held durable
    /// ack is replica-covered; plain [`ReplFrame::Ack`] keeps feeding
    /// the lag telemetry. A follower only emits `Covered` when its own
    /// fsync policy makes the applied bytes durable (i.e. it runs
    /// `--fsync always`, the follower-setup contract).
    Covered {
        /// The covered (applied-and-fsynced) position.
        position: ShardPosition,
        /// The `sent_at_us` of the Frames batch this claim follows (0
        /// for snapshot bootstraps and rotations).
        echo_us: u64,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_WELCOME: u8 = 2;
const KIND_FENCED: u8 = 3;
const KIND_SNAPSHOT: u8 = 4;
const KIND_FRAMES: u8 = 5;
const KIND_ROTATE: u8 = 6;
const KIND_HEARTBEAT: u8 = 7;
const KIND_ACK: u8 = 8;
const KIND_COVERED: u8 = 9;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_positions(buf: &mut Vec<u8>, positions: &[ShardPosition]) {
    put_u32(buf, positions.len() as u32);
    for p in positions {
        put_u32(buf, p.shard);
        put_u64(buf, p.gen);
        put_u64(buf, p.offset);
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return Err(Error::Corrupt("replication frame body truncated".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn positions(&mut self) -> Result<Vec<ShardPosition>> {
        let n = self.u32()?;
        if n as usize > self.data.len() / 20 + 1 {
            return Err(Error::Corrupt(format!(
                "replication frame claims {n} positions in a {}-byte body",
                self.data.len()
            )));
        }
        (0..n)
            .map(|_| {
                Ok(ShardPosition {
                    shard: self.u32()?,
                    gen: self.u64()?,
                    offset: self.u64()?,
                })
            })
            .collect()
    }

    fn rest(&mut self) -> Vec<u8> {
        let s = self.data[self.pos..].to_vec();
        self.pos = self.data.len();
        s
    }
}

impl ReplFrame {
    /// Serialize to the wire shape (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let kind = match self {
            ReplFrame::Hello {
                epoch,
                shards,
                resume,
            } => {
                put_u64(&mut body, *epoch);
                put_u32(&mut body, *shards);
                put_positions(&mut body, resume);
                KIND_HELLO
            }
            ReplFrame::Welcome { epoch, shards } => {
                put_u64(&mut body, *epoch);
                put_u32(&mut body, *shards);
                KIND_WELCOME
            }
            ReplFrame::Fenced { epoch } => {
                put_u64(&mut body, *epoch);
                KIND_FENCED
            }
            ReplFrame::Snapshot {
                shard,
                gen,
                epoch,
                bytes,
            } => {
                put_u32(&mut body, *shard);
                put_u64(&mut body, *gen);
                put_u64(&mut body, *epoch);
                body.extend_from_slice(bytes);
                KIND_SNAPSHOT
            }
            ReplFrame::Frames {
                shard,
                gen,
                offset,
                epoch,
                sent_at_us,
                bytes,
            } => {
                put_u32(&mut body, *shard);
                put_u64(&mut body, *gen);
                put_u64(&mut body, *offset);
                put_u64(&mut body, *epoch);
                put_u64(&mut body, *sent_at_us);
                body.extend_from_slice(bytes);
                KIND_FRAMES
            }
            ReplFrame::Rotate {
                shard,
                new_gen,
                epoch,
            } => {
                put_u32(&mut body, *shard);
                put_u64(&mut body, *new_gen);
                put_u64(&mut body, *epoch);
                KIND_ROTATE
            }
            ReplFrame::Heartbeat { epoch, positions } => {
                put_u64(&mut body, *epoch);
                put_positions(&mut body, positions);
                KIND_HEARTBEAT
            }
            ReplFrame::Ack { position, echo_us } => {
                put_u32(&mut body, position.shard);
                put_u64(&mut body, position.gen);
                put_u64(&mut body, position.offset);
                put_u64(&mut body, *echo_us);
                KIND_ACK
            }
            ReplFrame::Covered { position, echo_us } => {
                put_u32(&mut body, position.shard);
                put_u64(&mut body, position.gen);
                put_u64(&mut body, position.offset);
                put_u64(&mut body, *echo_us);
                KIND_COVERED
            }
        };
        let mut out = Vec::with_capacity(5 + body.len());
        put_u32(&mut out, body.len() as u32 + 1);
        out.push(kind);
        out.extend_from_slice(&body);
        out
    }

    /// Parse a frame from `kind` + `body` (the bytes after the length
    /// prefix).
    fn decode(kind: u8, body: &[u8]) -> Result<ReplFrame> {
        let mut c = Cursor { data: body, pos: 0 };
        let frame = match kind {
            KIND_HELLO => ReplFrame::Hello {
                epoch: c.u64()?,
                shards: c.u32()?,
                resume: c.positions()?,
            },
            KIND_WELCOME => ReplFrame::Welcome {
                epoch: c.u64()?,
                shards: c.u32()?,
            },
            KIND_FENCED => ReplFrame::Fenced { epoch: c.u64()? },
            KIND_SNAPSHOT => ReplFrame::Snapshot {
                shard: c.u32()?,
                gen: c.u64()?,
                epoch: c.u64()?,
                bytes: c.rest(),
            },
            KIND_FRAMES => ReplFrame::Frames {
                shard: c.u32()?,
                gen: c.u64()?,
                offset: c.u64()?,
                epoch: c.u64()?,
                sent_at_us: c.u64()?,
                bytes: c.rest(),
            },
            KIND_ROTATE => ReplFrame::Rotate {
                shard: c.u32()?,
                new_gen: c.u64()?,
                epoch: c.u64()?,
            },
            KIND_HEARTBEAT => ReplFrame::Heartbeat {
                epoch: c.u64()?,
                positions: c.positions()?,
            },
            KIND_ACK => ReplFrame::Ack {
                position: ShardPosition {
                    shard: c.u32()?,
                    gen: c.u64()?,
                    offset: c.u64()?,
                },
                echo_us: c.u64()?,
            },
            KIND_COVERED => ReplFrame::Covered {
                position: ShardPosition {
                    shard: c.u32()?,
                    gen: c.u64()?,
                    offset: c.u64()?,
                },
                echo_us: c.u64()?,
            },
            other => {
                return Err(Error::Corrupt(format!(
                    "unknown replication frame kind {other}"
                )))
            }
        };
        if c.pos != body.len() {
            return Err(Error::Corrupt(format!(
                "replication frame kind {kind} carries {} trailing bytes",
                body.len() - c.pos
            )));
        }
        Ok(frame)
    }

    /// Write one frame to `w` (buffered writers should flush after a
    /// logical batch; the codec does not).
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(&self.encode()).map_err(Error::from)
    }

    /// Read one frame from `r`. `Ok(None)` is a clean EOF at a frame
    /// boundary (the peer closed the stream); EOF mid-frame is an
    /// error.
    pub fn read_from(r: &mut impl Read) -> Result<Option<ReplFrame>> {
        let mut len = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match r.read(&mut len[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(Error::Corrupt("EOF inside replication frame".into())),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::from(e)),
            }
        }
        let len = u32::from_be_bytes(len);
        if len == 0 || len > MAX_FRAME {
            return Err(Error::Corrupt(format!(
                "replication frame length {len} out of range"
            )));
        }
        let mut buf = vec![0u8; len as usize];
        r.read_exact(&mut buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                Error::Corrupt("EOF inside replication frame".into())
            } else {
                Error::from(e)
            }
        })?;
        ReplFrame::decode(buf[0], &buf[1..]).map(Some)
    }
}

/// The reply a read-only follower sends to an ingest attempt: an error
/// line carrying a `redirect` hint naming where writes go. Lives here
/// (not in the server's proto module) so client libraries can match on
/// one canonical shape.
pub fn redirect_line(leader: &str) -> String {
    let mut m = serde_json::Map::new();
    m.insert("ok".into(), serde_json::Value::Bool(false));
    m.insert(
        "error".into(),
        serde_json::Value::String("follower is read-only: ingest is served by the leader".into()),
    );
    m.insert(
        "redirect".into(),
        serde_json::Value::String(leader.to_string()),
    );
    let mut s = serde_json::Value::Object(m).to_string();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: ReplFrame) {
        let bytes = f.encode();
        let mut r = &bytes[..];
        let back = ReplFrame::read_from(&mut r).unwrap().unwrap();
        assert_eq!(back, f);
        assert!(ReplFrame::read_from(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn all_frames_round_trip() {
        let pos = |shard, gen, offset| ShardPosition { shard, gen, offset };
        round_trip(ReplFrame::Hello {
            epoch: 3,
            shards: 4,
            resume: vec![pos(0, 1, 128), pos(3, 2, 0)],
        });
        round_trip(ReplFrame::Hello {
            epoch: 0,
            shards: 1,
            resume: vec![],
        });
        round_trip(ReplFrame::Welcome {
            epoch: 7,
            shards: 2,
        });
        round_trip(ReplFrame::Fenced { epoch: 9 });
        round_trip(ReplFrame::Snapshot {
            shard: 1,
            gen: 5,
            epoch: 2,
            bytes: b"{\"version\":1}".to_vec(),
        });
        round_trip(ReplFrame::Frames {
            shard: 0,
            gen: 4,
            offset: 4096,
            epoch: 1,
            sent_at_us: 17,
            bytes: vec![0xAB; 64],
        });
        round_trip(ReplFrame::Rotate {
            shard: 2,
            new_gen: 6,
            epoch: 1,
        });
        round_trip(ReplFrame::Heartbeat {
            epoch: 1,
            positions: vec![pos(0, 4, 9000), pos(1, 4, 12)],
        });
        round_trip(ReplFrame::Ack {
            position: pos(0, 4, 4160),
            echo_us: 99,
        });
        round_trip(ReplFrame::Covered {
            position: pos(1, 4, 4160),
            echo_us: 0,
        });
    }

    #[test]
    fn torn_and_oversized_frames_are_refused() {
        let bytes = ReplFrame::Fenced { epoch: 1 }.encode();
        let mut torn = &bytes[..bytes.len() - 2];
        assert!(ReplFrame::read_from(&mut torn).is_err(), "EOF mid-frame");

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        oversized.push(KIND_FENCED);
        let mut r = &oversized[..];
        assert!(ReplFrame::read_from(&mut r).is_err(), "length out of range");

        let mut unknown = Vec::new();
        unknown.extend_from_slice(&2u32.to_be_bytes());
        unknown.extend_from_slice(&[200, 0]);
        let mut r = &unknown[..];
        assert!(ReplFrame::read_from(&mut r).is_err(), "unknown kind");

        // Trailing garbage inside a fixed-shape body is refused too.
        let mut padded = Vec::new();
        padded.extend_from_slice(&10u32.to_be_bytes());
        padded.push(KIND_FENCED);
        padded.extend_from_slice(&[0; 9]);
        let mut r = &padded[..];
        assert!(ReplFrame::read_from(&mut r).is_err(), "trailing bytes");
    }

    #[test]
    fn redirect_line_is_parseable_json_with_hint() {
        let line = redirect_line("10.0.0.5:7171");
        let v: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
        assert_eq!(
            v.get("redirect").and_then(|s| s.as_str()),
            Some("10.0.0.5:7171")
        );
        assert!(v.get("error").and_then(|s| s.as_str()).is_some());
    }
}
