//! Binary ingest plane: length-prefixed, CRC32-framed record batches.
//!
//! A connection opts into this plane by sending the 4-byte magic
//! [`MAGIC`] (`FNB1`) as its very first bytes; anything else falls
//! back to the JSONL plane, so existing clients keep working
//! unmodified. The `FNB` prefix is reserved for future frame-format
//! revisions (`FNB2`, …) — a JSONL request can never start with it
//! because JSONL requests start with `{`.
//!
//! After the magic, the stream is a sequence of frames reusing the
//! WAL's framing discipline (`fenestra_temporal::wal_file`):
//!
//! ```text
//! [len: u32 BE][crc32: u32 BE][payload: len bytes]
//! ```
//!
//! `crc32` covers the payload only (same polynomial and bit order as
//! the WAL segments). The first payload byte is the frame kind:
//!
//! | kind | dir | body |
//! |------|-----|------|
//! | 0x01 `Batch`  | c→s | `stream: str16`, `dict: u16 × str16`, `n: u32`, then per event `ts: u64`, `nf: u16`, and per field `attr: u16` (dict index), `tag: u8`, value bytes |
//! | 0x02 `Sync`   | c→s | empty — a processing barrier, answered by `Synced` |
//! | 0x81 `Ack`    | s→c | `seq: u64`, `count: u32` — same admitted-vs-durable semantics as the JSONL ack |
//! | 0x82 `Err`    | s→c | `seq: u64` (0 when not frame-specific), `msg: str16` |
//! | 0x83 `Synced` | s→c | empty |
//!
//! `str16` is `[len: u16 BE][utf8 bytes]`. All integers are
//! big-endian. Value tags: 0 null, 1 false, 2 true, 3 int (`i64`),
//! 4 float (`f64` bits), 5 string (`u16` dict index), 6 entity id
//! (`u64`), 7 timestamp (`u64`).
//!
//! The dictionary holds every attribute name and string value of the
//! batch exactly once, so the per-event encoding is a packed tuple
//! stream — and the decoder interns each dict entry once per frame,
//! touching no per-field allocation on the hot path.

use fenestra_base::error::{Error, Result};
use fenestra_base::record::{Event, Record};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::{EntityId, Value};
use fenestra_temporal::wal_file::crc32;
use std::io::Read;

/// First bytes of a binary-plane connection. The `FNB` prefix is
/// reserved; the trailing digit versions the frame format.
pub const MAGIC: [u8; 4] = *b"FNB1";

/// Bytes before the payload: `[len: u32][crc32: u32]`.
pub const HEADER_LEN: usize = 8;

/// Default cap on a single frame's payload (`--max-frame-bytes`).
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

// Frame kinds (first payload byte).
const KIND_BATCH: u8 = 0x01;
const KIND_SYNC: u8 = 0x02;
const KIND_ACK: u8 = 0x81;
const KIND_ERR: u8 = 0x82;
const KIND_SYNCED: u8 = 0x83;

// Value tags inside a batch.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ID: u8 = 6;
const TAG_TIME: u8 = 7;

/// One decoded frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A batch of events for one stream (client → server).
    Batch {
        /// The stream every event in the batch belongs to.
        stream: Symbol,
        /// The events, in arrival order.
        events: Vec<Event>,
    },
    /// Processing barrier (client → server); answered by [`Frame::Synced`].
    Sync,
    /// Frame acknowledged (server → client); `seq` is the running
    /// per-connection event sequence number of the batch's last event.
    Ack {
        /// Sequence number of the last event covered by this ack.
        seq: u64,
        /// Number of events in the acked frame.
        count: u64,
    },
    /// Request failed (server → client); `seq` 0 means the error is
    /// not tied to a specific ingest frame.
    Err {
        /// Sequence number of the failed frame's last event, or 0.
        seq: u64,
        /// Human-readable reason.
        msg: String,
    },
    /// Barrier reply: everything admitted before the matching
    /// [`Frame::Sync`] on this connection has been processed.
    Synced,
}

/// Result of probing a read buffer for the next frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// Not enough bytes buffered; retry once at least `need` total
    /// bytes are available.
    NeedMore {
        /// Minimum total buffered bytes before the next probe can
        /// make progress.
        need: usize,
    },
    /// A CRC-valid frame occupies `buf[..end]`; its payload is
    /// `buf[HEADER_LEN..end]`.
    Ready {
        /// One past the frame's last byte in the buffer.
        end: usize,
    },
}

/// Probe `buf` for a complete frame without copying. Enforces
/// `max_frame` on the declared payload length *before* buffering it
/// (a hostile length prefix cannot make the server allocate), and
/// verifies the CRC once the payload is complete.
pub fn check_frame(buf: &[u8], max_frame: usize) -> Result<FrameStatus> {
    if buf.len() < HEADER_LEN {
        return Ok(FrameStatus::NeedMore { need: HEADER_LEN });
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > max_frame {
        return Err(Error::Invalid(format!(
            "frame too large: {len} bytes exceeds max-frame-bytes {max_frame}"
        )));
    }
    let end = HEADER_LEN + len;
    if buf.len() < end {
        return Ok(FrameStatus::NeedMore { need: end });
    }
    let want = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let got = crc32(&buf[HEADER_LEN..end]);
    if want != got {
        return Err(Error::Invalid(format!(
            "frame CRC mismatch: header {want:#010x}, payload {got:#010x}"
        )));
    }
    Ok(FrameStatus::Ready { end })
}

/// Decode one CRC-verified payload (the `buf[HEADER_LEN..end]` slice
/// a [`FrameStatus::Ready`] points at).
pub fn decode_payload(payload: &[u8]) -> Result<Frame> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    let frame = match kind {
        KIND_BATCH => decode_batch(&mut c)?,
        KIND_SYNC => Frame::Sync,
        KIND_ACK => Frame::Ack {
            seq: c.u64()?,
            count: u64::from(c.u32()?),
        },
        KIND_ERR => Frame::Err {
            seq: c.u64()?,
            msg: c.str16()?.to_string(),
        },
        KIND_SYNCED => Frame::Synced,
        other => {
            return Err(Error::Invalid(format!("unknown frame kind {other:#04x}")));
        }
    };
    c.finish()?;
    Ok(frame)
}

fn decode_batch(c: &mut Cursor<'_>) -> Result<Frame> {
    let stream = Symbol::intern(c.str16()?);
    let dict_len = c.u16()? as usize;
    // Interned once per frame; per-field decoding below is a table
    // lookup, not a string allocation.
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(Symbol::intern(c.str16()?));
    }
    let sym = |i: u16| -> Result<Symbol> {
        dict.get(i as usize)
            .copied()
            .ok_or_else(|| Error::Invalid(format!("dict index {i} out of range (len {dict_len})")))
    };
    let n = c.u32()? as usize;
    // Guard the event-count prefix the same way the frame length is
    // guarded: each event costs at least 10 payload bytes, so a count
    // that cannot fit in the remaining payload is rejected before any
    // allocation.
    if n > c.remaining() / 10 {
        return Err(Error::Invalid(format!(
            "batch claims {n} events but only {} payload bytes remain",
            c.remaining()
        )));
    }
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let ts = Timestamp::new(c.u64()?);
        let nf = c.u16()? as usize;
        let mut record = Record::new();
        for _ in 0..nf {
            let attr = sym(c.u16()?)?;
            let value = match c.u8()? {
                TAG_NULL => Value::Null,
                TAG_FALSE => Value::Bool(false),
                TAG_TRUE => Value::Bool(true),
                TAG_INT => Value::Int(c.u64()? as i64),
                TAG_FLOAT => Value::Float(f64::from_bits(c.u64()?)),
                TAG_STR => Value::Str(sym(c.u16()?)?),
                TAG_ID => Value::Id(EntityId(c.u64()?)),
                TAG_TIME => Value::Time(Timestamp::new(c.u64()?)),
                t => return Err(Error::Invalid(format!("unknown value tag {t}"))),
            };
            record.set(attr, value);
        }
        events.push(Event::new(stream, ts, record));
    }
    Ok(Frame::Batch { stream, events })
}

// ----- encoding -------------------------------------------------------------

/// Encode a batch frame (header included). Fails only on format
/// limits: > 65535 distinct strings, > 65535 fields in one event, or
/// > `u32::MAX` events.
pub fn encode_batch(stream: &str, events: &[Event]) -> Result<Vec<u8>> {
    let mut dict: Vec<Symbol> = Vec::new();
    let index = |s: Symbol, dict: &mut Vec<Symbol>| -> Result<u16> {
        let i = match dict.iter().position(|&d| d == s) {
            Some(i) => i,
            None => {
                dict.push(s);
                dict.len() - 1
            }
        };
        u16::try_from(i)
            .map_err(|_| Error::Invalid("batch dictionary exceeds 65535 strings".into()))
    };
    // First pass: build the dictionary in first-use order. One encoded
    // event is its timestamp plus `(attr index, value tag, value bits)`
    // per field.
    type EncodedEvent = (u64, Vec<(u16, u8, u64)>);
    let mut tuples: Vec<EncodedEvent> = Vec::with_capacity(events.len());
    for ev in events {
        let mut fields = Vec::with_capacity(ev.record.len());
        for (attr, v) in ev.record.iter() {
            let ai = index(attr, &mut dict)?;
            let (tag, bits) = match v {
                Value::Null => (TAG_NULL, 0),
                Value::Bool(false) => (TAG_FALSE, 0),
                Value::Bool(true) => (TAG_TRUE, 0),
                Value::Int(i) => (TAG_INT, *i as u64),
                Value::Float(f) => (TAG_FLOAT, f.to_bits()),
                Value::Str(s) => (TAG_STR, u64::from(index(*s, &mut dict)?)),
                Value::Id(e) => (TAG_ID, e.0),
                Value::Time(t) => (TAG_TIME, t.millis()),
            };
            fields.push((ai, tag, bits));
        }
        if u16::try_from(fields.len()).is_err() {
            return Err(Error::Invalid("event exceeds 65535 fields".into()));
        }
        tuples.push((ev.ts.millis(), fields));
    }
    let n = u32::try_from(events.len())
        .map_err(|_| Error::Invalid("batch exceeds u32::MAX events".into()))?;

    let mut p = Payload::new(KIND_BATCH);
    p.str16(stream)?;
    p.u16(dict.len() as u16);
    for s in &dict {
        p.str16(s.as_str())?;
    }
    p.u32(n);
    for (ts, fields) in &tuples {
        p.u64(*ts);
        p.u16(fields.len() as u16);
        for (attr, tag, bits) in fields {
            p.u16(*attr);
            p.u8(*tag);
            match *tag {
                TAG_NULL | TAG_FALSE | TAG_TRUE => {}
                TAG_STR => p.u16(*bits as u16),
                _ => p.u64(*bits),
            }
        }
    }
    Ok(p.frame())
}

/// Encode a `Sync` barrier frame.
pub fn encode_sync() -> Vec<u8> {
    Payload::new(KIND_SYNC).frame()
}

/// Encode an `Ack` reply frame.
pub fn encode_ack(seq: u64, count: u64) -> Vec<u8> {
    let mut p = Payload::new(KIND_ACK);
    p.u64(seq);
    p.u32(count.min(u64::from(u32::MAX)) as u32);
    p.frame()
}

/// Encode an `Err` reply frame (`seq` 0 when not frame-specific). The
/// message is truncated to the `str16` limit rather than failing —
/// an error about an error helps nobody.
pub fn encode_err(seq: u64, msg: &str) -> Vec<u8> {
    let mut truncated = msg;
    while truncated.len() > u16::MAX as usize {
        let cut = truncated
            .char_indices()
            .map(|(i, _)| i)
            .take_while(|&i| i <= u16::MAX as usize)
            .last()
            .unwrap_or(0);
        truncated = &truncated[..cut];
    }
    let mut p = Payload::new(KIND_ERR);
    p.u64(seq);
    p.str16(truncated).expect("length capped above");
    p.frame()
}

/// Encode a `Synced` reply frame.
pub fn encode_synced() -> Vec<u8> {
    Payload::new(KIND_SYNCED).frame()
}

/// Blocking read of exactly one frame — the client half for tests,
/// benches, and simple integrations. Returns `None` on clean EOF at a
/// frame boundary.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(Error::Invalid("connection closed mid-frame".into())),
            Ok(k) => got += k,
            Err(e) => return Err(Error::Invalid(format!("read failed: {e}"))),
        }
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > max_frame {
        return Err(Error::Invalid(format!(
            "frame too large: {len} bytes exceeds max-frame-bytes {max_frame}"
        )));
    }
    let mut buf = vec![0u8; HEADER_LEN + len];
    buf[..HEADER_LEN].copy_from_slice(&header);
    let mut at = HEADER_LEN;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => return Err(Error::Invalid("connection closed mid-frame".into())),
            Ok(k) => at += k,
            Err(e) => return Err(Error::Invalid(format!("read failed: {e}"))),
        }
    }
    match check_frame(&buf, max_frame)? {
        FrameStatus::Ready { end } => decode_payload(&buf[HEADER_LEN..end]).map(Some),
        FrameStatus::NeedMore { .. } => unreachable!("whole frame was read"),
    }
}

// ----- internals ------------------------------------------------------------

/// Bounds-checked big-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Invalid(format!(
                "truncated frame payload: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str16(&mut self) -> Result<&'a str> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| Error::Invalid("string field is not valid UTF-8".into()))
    }

    /// A well-formed payload is consumed exactly; trailing bytes mean
    /// a framing bug on the peer, not something to ignore.
    fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::Invalid(format!(
                "{} trailing bytes after frame payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Payload builder that finishes into a framed `[len][crc][payload]`.
struct Payload {
    // The payload is built in place after a header-sized hole so
    // `frame()` never copies.
    buf: Vec<u8>,
}

impl Payload {
    fn new(kind: u8) -> Payload {
        let mut buf = vec![0u8; HEADER_LEN];
        buf.push(kind);
        Payload { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn str16(&mut self, s: &str) -> Result<()> {
        let n = u16::try_from(s.len()).map_err(|_| {
            Error::Invalid(format!("string exceeds 65535 bytes: {} bytes", s.len()))
        })?;
        self.u16(n);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    fn frame(mut self) -> Vec<u8> {
        let len = (self.buf.len() - HEADER_LEN) as u32;
        let crc = crc32(&self.buf[HEADER_LEN..]);
        self.buf[..4].copy_from_slice(&len.to_be_bytes());
        self.buf[4..8].copy_from_slice(&crc.to_be_bytes());
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev(stream: &str, ts: u64, pairs: &[(&str, Value)]) -> Event {
        Event::from_pairs(stream, ts, pairs.iter().map(|(n, v)| (*n, *v)))
    }

    fn round_trip(stream: &str, events: Vec<Event>) -> (Symbol, Vec<Event>) {
        let frame = encode_batch(stream, &events).unwrap();
        let FrameStatus::Ready { end } = check_frame(&frame, DEFAULT_MAX_FRAME).unwrap() else {
            panic!("whole frame must be ready");
        };
        assert_eq!(end, frame.len());
        match decode_payload(&frame[HEADER_LEN..end]).unwrap() {
            Frame::Batch { stream, events } => (stream, events),
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn batch_round_trips_every_value_kind() {
        let events = vec![
            ev(
                "s",
                1,
                &[
                    ("null", Value::Null),
                    ("no", Value::Bool(false)),
                    ("yes", Value::Bool(true)),
                    ("int", Value::Int(-42)),
                    ("float", Value::Float(2.5)),
                    ("str", Value::str("hello")),
                    ("id", Value::Id(EntityId(7))),
                    ("time", Value::Time(Timestamp::new(123))),
                ],
            ),
            ev("s", u64::MAX, &[("int", Value::Int(i64::MIN))]),
            ev("s", 0, &[]),
        ];
        let (stream, decoded) = round_trip("s", events.clone());
        assert_eq!(stream, Symbol::intern("s"));
        assert_eq!(decoded, events);
    }

    #[test]
    fn dict_is_shared_across_events_and_attrs() {
        // 100 events with the same attrs/values: the dictionary should
        // pay for each string once, so the frame stays far below the
        // naive repeated-strings size.
        let events: Vec<Event> = (0..100)
            .map(|i| {
                ev(
                    "metrics",
                    i,
                    &[("host", Value::str("web-1")), ("status", Value::str("ok"))],
                )
            })
            .collect();
        let frame = encode_batch("metrics", &events).unwrap();
        // Per event: ts(8) + nf(2) + 2×(attr 2 + tag 1 + idx 2) = 20.
        assert!(frame.len() < HEADER_LEN + 64 + 100 * 21, "{}", frame.len());
        let (_, decoded) = round_trip("metrics", events.clone());
        assert_eq!(decoded, events);
    }

    #[test]
    fn control_frames_round_trip() {
        for (bytes, want) in [
            (encode_sync(), Frame::Sync),
            (encode_ack(9, 4), Frame::Ack { seq: 9, count: 4 }),
            (
                encode_err(0, "shed: ingest queue full"),
                Frame::Err {
                    seq: 0,
                    msg: "shed: ingest queue full".into(),
                },
            ),
            (encode_synced(), Frame::Synced),
        ] {
            let FrameStatus::Ready { end } = check_frame(&bytes, 1024).unwrap() else {
                panic!("ready");
            };
            assert_eq!(decode_payload(&bytes[HEADER_LEN..end]).unwrap(), want);
        }
    }

    #[test]
    fn truncated_frames_ask_for_more() {
        let frame = encode_batch("s", &[ev("s", 1, &[("x", Value::Int(1))])]).unwrap();
        for cut in 0..frame.len() {
            match check_frame(&frame[..cut], DEFAULT_MAX_FRAME).unwrap() {
                FrameStatus::NeedMore { need } => {
                    assert!(need > cut, "need {need} must exceed the {cut} buffered");
                    assert!(need <= frame.len());
                }
                FrameStatus::Ready { .. } => panic!("cut {cut} cannot be a whole frame"),
            }
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let frame = encode_batch("s", &[ev("s", 1, &[("x", Value::Int(1))])]).unwrap();
        // Flip one payload byte: CRC must catch it.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let err = check_frame(&bad, DEFAULT_MAX_FRAME).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
        // Oversize length prefix is rejected before buffering.
        let err = check_frame(&frame, frame.len() - HEADER_LEN - 1).unwrap_err();
        assert!(err.to_string().contains("max-frame-bytes"), "{err}");
        // A bogus kind byte fails decode.
        let mut p = frame.clone();
        p[HEADER_LEN] = 0x7f;
        let fixed = {
            let crc = crc32(&p[HEADER_LEN..]);
            p[4..8].copy_from_slice(&crc.to_be_bytes());
            p
        };
        let FrameStatus::Ready { end } = check_frame(&fixed, DEFAULT_MAX_FRAME).unwrap() else {
            panic!("ready");
        };
        assert!(decode_payload(&fixed[HEADER_LEN..end]).is_err());
    }

    #[test]
    fn hostile_event_count_is_rejected_without_allocation() {
        // A tiny payload claiming u32::MAX events must fail on the
        // count check, not attempt a huge Vec::with_capacity.
        let mut p = Payload::new(KIND_BATCH);
        p.str16("s").unwrap();
        p.u16(0); // empty dict
        p.u32(u32::MAX);
        let frame = p.frame();
        let FrameStatus::Ready { end } = check_frame(&frame, DEFAULT_MAX_FRAME).unwrap() else {
            panic!("ready");
        };
        let err = decode_payload(&frame[HEADER_LEN..end]).unwrap_err();
        assert!(err.to_string().contains("claims"), "{err}");
    }

    #[test]
    fn trailing_bytes_are_a_framing_error() {
        let mut p = Payload::new(KIND_SYNC);
        p.u8(0xaa);
        let frame = p.frame();
        let FrameStatus::Ready { end } = check_frame(&frame, 1024).unwrap() else {
            panic!("ready");
        };
        let err = decode_payload(&frame[HEADER_LEN..end]).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn read_frame_pulls_one_frame_from_a_stream() {
        let mut bytes = encode_ack(1, 1);
        bytes.extend_from_slice(&encode_synced());
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r, 1024).unwrap(),
            Some(Frame::Ack { seq: 1, count: 1 })
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap(), Some(Frame::Synced));
        assert_eq!(read_frame(&mut r, 1024).unwrap(), None, "clean EOF");
        // EOF mid-frame is an error, not a silent None.
        let cut = &bytes[..5];
        let mut r = cut;
        assert!(read_frame(&mut r, 1024).is_err());
    }

    // Property: encode → check → decode is the identity on any batch
    // the encoder accepts (floats generated non-NaN so Event equality
    // is meaningful).
    proptest! {
        #[test]
        fn prop_batch_round_trip(
            stream_i in 0u32..8,
            raw in proptest::collection::vec(
                (
                    proptest::collection::vec(
                        (0u32..16, 0u32..2, -1.0e12f64..1.0e12),
                        0..8,
                    ),
                    0u64..1_000_000,
                ),
                0..32,
            ),
        ) {
            let stream = format!("stream-{stream_i}");
            let events: Vec<Event> = raw
                .iter()
                .map(|(fields, ts)| {
                    let mut r = Record::new();
                    for (k, which, f) in fields {
                        let name = format!("attr-{k}");
                        if *which == 0 {
                            r.set(name.as_str(), Value::Float(*f));
                        } else {
                            r.set(name.as_str(), Value::Int(i64::from(*k)));
                        }
                    }
                    Event::new(stream.as_str(), *ts, r)
                })
                .collect();
            let frame = encode_batch(&stream, &events).unwrap();
            let FrameStatus::Ready { end } =
                check_frame(&frame, DEFAULT_MAX_FRAME).unwrap()
            else {
                panic!("whole frame must be ready");
            };
            prop_assert_eq!(end, frame.len());
            let Frame::Batch { stream: s, events: got } =
                decode_payload(&frame[HEADER_LEN..end]).unwrap()
            else {
                panic!("expected batch");
            };
            prop_assert_eq!(s, Symbol::intern(&stream));
            prop_assert_eq!(got, events);
        }
    }
}
