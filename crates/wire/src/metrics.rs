//! Engine metrics as JSON — one flat object, shared verbatim by
//! `fenestra run --metrics-json` and the server's `stats` command so
//! dashboards scrape one shape everywhere.
//!
//! ## The server's `stats` reply shape
//!
//! `fenestrad` embeds this object once merged and once per shard:
//!
//! ```json
//! {"ok":true, "engine":{…}, "server":{…}, "stages":{…},
//!  "shards":[{"shard":0, "engine":{…}, "held_acks":0,
//!             "gauges":{…}, "stages":{…}}, …]}
//! ```
//!
//! * `engine` (top level) — the shard engines' counters **summed**:
//!   the same totals a single-shard run would report. Read from
//!   published per-shard atomics on the connection thread (`stats` is
//!   not a processing barrier; the `sync` command is).
//! * `stages` (top level) — per-stage latency histogram summaries
//!   (`{count, p50, p90, p99, max, mean}`) **merged across shards**:
//!   `admit_us`, `queue_wait_us`, `reorder_dwell_us`, `wal_append_us`,
//!   `fsync_us`, `ack_hold_us`, and the lateness-diagnostic
//!   `late_margin_ms` over dropped events.
//! * `shards[i].shard` — the shard index (also the `-<shard>-` in that
//!   shard's WAL segment names and the `.shard<i>` snapshot suffix).
//! * `shards[i].engine` — that shard's own counters, same flat shape.
//!   Uneven `events` across shards means the entity keys hash
//!   unevenly (few distinct keys, or one hot key).
//! * `shards[i].held_acks` — durable acks the shard is currently
//!   holding: frames admitted but not yet covered by a fsynced WAL
//!   commit (nonzero steady-state usually means a lateness bound is
//!   keeping events in the reorder buffer).
//! * `shards[i].gauges` — point-in-time gauges: `queue_depth`,
//!   `queue_hwm` (this shard's own high-water mark; `server.queue_hwm`
//!   is the max over shards), `reorder_depth`, `watermark_lag_ms`,
//!   `held_acks`, `wal_segment_bytes`, `state_facts`.
//! * `shards[i].stages` — the same histogram summaries as the top
//!   level, unmerged (this shard only).
//!
//! Server-level counters (`server.events`, `server.gc_removed`,
//! `server.wal_appends`, …) are shared across shards and reported
//! once, already summed. The same numbers are exported in Prometheus
//! text form on `--metrics-addr` (see `fenestra-server`'s `prom`
//! module).

use fenestra_core::EngineMetrics;
use serde_json::{Map, Value as Json};

/// Engine counters as a JSON object value (for embedding in larger
/// replies, e.g. the server's `stats`).
pub fn metrics_json_value(m: &EngineMetrics) -> Json {
    let mut obj = Map::new();
    obj.insert("events".into(), Json::from(m.events));
    obj.insert("late_dropped".into(), Json::from(m.late_dropped));
    obj.insert("rule_fired".into(), Json::from(m.rule_fired));
    obj.insert("transitions".into(), Json::from(m.transitions));
    obj.insert("guard_blocked".into(), Json::from(m.guard_blocked));
    obj.insert("rule_errors".into(), Json::from(m.rule_errors));
    obj.insert("reason_asserted".into(), Json::from(m.reason_asserted));
    obj.insert("reason_retracted".into(), Json::from(m.reason_retracted));
    obj.insert("reason_syncs".into(), Json::from(m.reason_syncs));
    obj.insert("ttl_expired".into(), Json::from(m.ttl_expired));
    Json::Object(obj)
}

/// Engine counters as a single-line JSON string.
pub fn metrics_to_json(m: &EngineMetrics) -> String {
    metrics_json_value(m).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_counters_present_and_parseable() {
        let m = EngineMetrics {
            events: 7,
            late_dropped: 1,
            ..Default::default()
        };
        let json = metrics_to_json(&m);
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("events").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("late_dropped").and_then(|x| x.as_u64()), Some(1));
        for key in [
            "rule_fired",
            "transitions",
            "guard_blocked",
            "rule_errors",
            "reason_asserted",
            "reason_retracted",
            "reason_syncs",
            "ttl_expired",
        ] {
            assert_eq!(v.get(key).and_then(|x| x.as_u64()), Some(0), "{key}");
        }
    }
}
