//! Engine metrics as JSON — one flat object, shared verbatim by
//! `fenestra run --metrics-json` and the server's `stats` command so
//! dashboards scrape one shape everywhere.

use fenestra_core::EngineMetrics;
use serde_json::{Map, Value as Json};

/// Engine counters as a JSON object value (for embedding in larger
/// replies, e.g. the server's `stats`).
pub fn metrics_json_value(m: &EngineMetrics) -> Json {
    let mut obj = Map::new();
    obj.insert("events".into(), Json::from(m.events));
    obj.insert("late_dropped".into(), Json::from(m.late_dropped));
    obj.insert("rule_fired".into(), Json::from(m.rule_fired));
    obj.insert("transitions".into(), Json::from(m.transitions));
    obj.insert("guard_blocked".into(), Json::from(m.guard_blocked));
    obj.insert("rule_errors".into(), Json::from(m.rule_errors));
    obj.insert("reason_asserted".into(), Json::from(m.reason_asserted));
    obj.insert("reason_retracted".into(), Json::from(m.reason_retracted));
    obj.insert("reason_syncs".into(), Json::from(m.reason_syncs));
    obj.insert("ttl_expired".into(), Json::from(m.ttl_expired));
    Json::Object(obj)
}

/// Engine counters as a single-line JSON string.
pub fn metrics_to_json(m: &EngineMetrics) -> String {
    metrics_json_value(m).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_counters_present_and_parseable() {
        let m = EngineMetrics {
            events: 7,
            late_dropped: 1,
            ..Default::default()
        };
        let json = metrics_to_json(&m);
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("events").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("late_dropped").and_then(|x| x.as_u64()), Some(1));
        for key in [
            "rule_fired",
            "transitions",
            "guard_blocked",
            "rule_errors",
            "reason_asserted",
            "reason_retracted",
            "reason_syncs",
            "ttl_expired",
        ] {
            assert_eq!(v.get(key).and_then(|x| x.as_u64()), Some(0), "{key}");
        }
    }
}
