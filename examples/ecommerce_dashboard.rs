//! E-commerce decision support (paper §3.1 case study).
//!
//! Sales trends per product class, where the classification itself
//! evolves: catalog events reclassify products over time. The state
//! management rules keep the classification as explicit state; the
//! stream pipeline enriches each sale with the classification *valid
//! at the sale's timestamp* and aggregates per class; the taxonomy
//! ontology derives coarse-grained classes; and the management can
//! query both current and historical classifications on demand.
//!
//! Run with: `cargo run --example ecommerce_dashboard`

use fenestra::prelude::*;
use fenestra::workloads::{EcommerceConfig, EcommerceWorkload};

fn main() {
    let workload = EcommerceWorkload::generate(&EcommerceConfig {
        products: 50,
        classes: 6,
        sales: 1_000,
        reclass_prob: 0.05,
        ..Default::default()
    });
    println!(
        "workload: {} sales, {} catalog updates",
        workload.sale_count, workload.catalog_count
    );

    let mut engine = Engine::new(EngineConfig {
        auto_reason: true,
        ..EngineConfig::default()
    });
    engine.declare_attr("class", AttrSchema::one());
    engine.declare_attr("type", AttrSchema::many());

    // State management: catalog events maintain the classification, and
    // tag each product's `type` for the taxonomy.
    engine
        .add_rules_text(
            r#"
            rule classify:
              on catalog
              replace $(product).class = class
              replace $(product).type = class
            "#,
        )
        .unwrap();

    // Reasoning: a small taxonomy over the classes — class0/class1 are
    // "physical", class2/class3 are "digital"; everything is "goods".
    engine.set_ontology(Ontology::from_axioms([
        Axiom::SubClassOf(Value::str("class0"), Value::str("physical")),
        Axiom::SubClassOf(Value::str("class1"), Value::str("physical")),
        Axiom::SubClassOf(Value::str("class2"), Value::str("digital")),
        Axiom::SubClassOf(Value::str("class3"), Value::str("digital")),
        Axiom::SubClassOf(Value::str("physical"), Value::str("goods")),
        Axiom::SubClassOf(Value::str("digital"), Value::str("goods")),
    ]));

    // Stream processing: enrich each sale with the classification valid
    // at the sale's event time, then revenue per class in 1-minute
    // tumbling windows.
    let store = engine.shared_store();
    let mut g = Graph::new();
    let enrich = g.add_op(StateEnrich::new(store, "product").attr("class", "class"));
    g.connect_source("sales", enrich);
    let revenue = g.add_op(Derive::new(
        "revenue",
        Expr::name("qty").mul(Expr::name("price")),
    ));
    g.connect(enrich, revenue);
    let win = g.add_op(
        TimeWindowOp::tumbling(Duration::minutes(1))
            .group_by(["class"])
            .aggregate(AggSpec::sum("revenue", "total"))
            .aggregate(AggSpec::count("n_sales")),
    );
    g.connect(revenue, win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    engine.set_graph(g).unwrap();

    engine.run(workload.events.iter().cloned());
    engine.finish();

    // Dashboard: last few window rows.
    let out = sink.take();
    println!("\nrevenue per class, per 1-minute window (last 6 rows):");
    for e in out.iter().rev().take(6).rev() {
        println!(
            "  [{}] {:10} total={:8} sales={}",
            e.get("window_start").unwrap(),
            e.get("class").unwrap().to_string(),
            e.get("total").unwrap(),
            e.get("n_sales").unwrap(),
        );
    }

    // Queryable state: how many products are currently "digital"
    // according to the taxonomy (derived knowledge)?
    let digital = engine
        .query(r#"select ?p where { ?p type "digital" }"#)
        .unwrap();
    let goods = engine
        .query(r#"select ?p where { ?p type "goods" }"#)
        .unwrap();
    println!(
        "\ntaxonomy: {} digital products, {} goods overall (derived by the reasoner)",
        digital.len(),
        goods.len()
    );

    // Historical query: what was p0's class at t=10s, and its history?
    let past = engine
        .query(r#"select ?c where { "p0" class ?c } asof 10000"#)
        .unwrap();
    println!("p0's class at t=10s: {:?}", past.rows().unwrap());
    if let QueryResult::History(h) = engine.query("history p0 class").unwrap() {
        println!("p0's classification history ({} intervals):", h.len());
        for (interval, class, _) in h.iter().take(4) {
            println!("  {} {}", interval, class);
        }
    }

    let m = engine.metrics();
    println!(
        "\nmetrics: {} events, {} transitions, reasoner asserted {} / retracted {}",
        m.events, m.transitions, m.reason_asserted, m.reason_retracted
    );
}
