//! Fraud monitoring: multi-event state transitions (paper §3.3, open
//! question 1 — "a state transition determined by multiple streaming
//! elements").
//!
//! Three card transactions from *different* cities within 2 minutes,
//! with no intervening identity check, flag the card as suspicious —
//! a condition no single event determines. The flag is explicit state:
//! it gates further processing, is queryable on demand, and every flag
//! transition is republished on a `state_changes` stream that feeds an
//! alerting window.
//!
//! Run with: `cargo run --example fraud_monitor`

use fenestra::prelude::*;

fn tx(ts: u64, card: &str, city: &str, amount: i64) -> Event {
    Event::from_pairs(
        "transactions",
        ts,
        [
            ("card", Value::str(card)),
            ("city", Value::str(city)),
            ("amount", Value::Int(amount)),
        ],
    )
}

fn check(ts: u64, card: &str) -> Event {
    Event::from_pairs("id_checks", ts, [("card", card)])
}

fn main() {
    let mut engine = Engine::with_defaults();
    engine.declare_attr("status", AttrSchema::one());

    engine
        .add_rules_text(
            r#"
            # Three transactions on the same card from three cities
            # within two minutes, with no identity check in between.
            rule velocity_fraud:
              on pattern (a: transactions)
                 then (b: transactions where card == a.card and city != a.city)
                 then (c: transactions where card == a.card
                                          and city != a.city and city != b.city)
                 within 2m
                 without (k: id_checks where card == a.card)
              replace $(a.card).status = "suspicious"

            # An identity check clears the flag.
            rule cleared:
              on id_checks
              if state($(card)).status == "suspicious"
              replace $(card).status = "cleared"
            "#,
        )
        .expect("valid rules");

    // Every flag transition becomes an alert event; count alerts in
    // 5-minute windows.
    engine.publish_transitions("state_changes");
    let mut g = Graph::new();
    let alerts = g.add_op(Filter::new(
        Expr::name("op")
            .eq(Expr::lit("replace"))
            .and(Expr::name("value").eq(Expr::lit("suspicious"))),
    ));
    g.connect_source("state_changes", alerts);
    let win =
        g.add_op(TimeWindowOp::tumbling(Duration::minutes(5)).aggregate(AggSpec::count("alerts")));
    g.connect(alerts, win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    engine.set_graph(g).unwrap();

    // A normal customer, a checked traveller, and a cloned card.
    engine.run([
        // card A: same city, fine.
        tx(10_000, "cardA", "zurich", 40),
        tx(20_000, "cardA", "zurich", 15),
        tx(30_000, "cardA", "zurich", 25),
        // card B: travels fast but passes an identity check.
        tx(40_000, "cardB", "zurich", 120),
        tx(60_000, "cardB", "milan", 80),
        check(70_000, "cardB"),
        tx(80_000, "cardB", "paris", 300),
        // card C: three cities in 70 seconds, no check.
        tx(100_000, "cardC", "zurich", 500),
        tx(130_000, "cardC", "milan", 700),
        tx(170_000, "cardC", "lagos", 900),
        // card C gets checked later and is cleared.
        check(400_000, "cardC"),
    ]);
    engine.finish();

    let now = engine
        .query(r#"select ?c where { ?c status "suspicious" }"#)
        .unwrap();
    let at_200s = engine
        .query(r#"select ?c where { ?c status "suspicious" } asof 200000"#)
        .unwrap();
    println!(
        "suspicious cards: {} now, {} as of t=200s (cardC was flagged, then cleared)",
        now.len(),
        at_200s.len()
    );
    assert_eq!(at_200s.len(), 1);

    println!("\ncardC's flag history:");
    if let QueryResult::History(h) = engine.query("history cardC status").unwrap() {
        for (iv, v, prov) in &h {
            println!("  {iv} {v} [{prov}]");
        }
    }

    println!("\nalert windows:");
    for e in sink.take() {
        println!(
            "  [{} .. {}] {} alert(s)",
            e.get("window_start").unwrap(),
            e.get("window_end").unwrap(),
            e.get("alerts").unwrap()
        );
    }

    let m = engine.metrics();
    println!(
        "\nmetrics: {} events, {} rule firings, {} transitions",
        m.events, m.rule_fired, m.transitions
    );
    assert_eq!(
        engine
            .query(r#"select count ?c where { ?c status "cleared" }"#)
            .unwrap()
            .rows()
            .unwrap()[0][0]
            .1,
        Value::Int(1),
        "card-C was flagged then cleared"
    );
}
