//! Click-stream session monitoring (paper §1, first motivating
//! example): "trace a user from the moment when she enters the Web
//! site to the moment when she leaves. A shorter observation time
//! frame would be meaningless… a larger time frame could waste
//! computational resources."
//!
//! Three contestants on the same trace:
//!   1. a fixed 30s tumbling window (splits long sessions, pads short);
//!   2. gap-based session windows (no explicit boundaries — the gap is
//!      a guess);
//!   3. explicit state driven by the enter/leave events themselves,
//!      plus a state-gated pipeline that only processes active users.
//!
//! Run with: `cargo run --example clickstream_sessions`

use fenestra::prelude::*;
use fenestra::workloads::{ClickstreamConfig, ClickstreamWorkload};

fn main() {
    let workload = ClickstreamWorkload::generate(&ClickstreamConfig {
        users: 30,
        sessions: 150,
        mean_session_ms: 60_000.0,
        session_sigma: 1.2,
        ..Default::default()
    });
    println!(
        "trace: {} events, {} true sessions, mean length {:.1}s",
        workload.events.len(),
        workload.sessions.len(),
        workload.mean_session_len() / 1000.0
    );

    // ---- 1. Fixed tumbling window -----------------------------------------
    let mut g = Graph::new();
    let win = g.add_op(
        TimeWindowOp::tumbling(Duration::secs(30))
            .group_by(["user"])
            .aggregate(AggSpec::count("n")),
    );
    g.connect_source("clicks", win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    let mut ex = Executor::new(g);
    ex.run(workload.events.iter().cloned());
    ex.finish();
    let fixed_rows = sink.take();
    println!(
        "\n30s tumbling windows: {} (user, window) fragments for {} true sessions",
        fixed_rows.len(),
        workload.sessions.len()
    );

    // ---- 2. Session windows -----------------------------------------------
    let mut g = Graph::new();
    let win = g.add_op(
        SessionWindowOp::new(Duration::secs(15))
            .group_by(["user"])
            .aggregate(AggSpec::count("n")),
    );
    g.connect_source("clicks", win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    let mut ex = Executor::new(g);
    ex.run(workload.events.iter().cloned());
    ex.finish();
    let session_rows = sink.take();
    println!(
        "15s-gap session windows: {} detected sessions (gap too small splits, too large merges)",
        session_rows.len()
    );

    // ---- 3. Explicit state ------------------------------------------------
    let mut engine = Engine::with_defaults();
    engine.declare_attr("status", AttrSchema::one());
    engine
        .add_rules_text(
            r#"
            rule enter:
              on clicks where action == "enter"
              replace $(user).status = "active"

            rule leave:
              on clicks where action == "leave"
              if state($(user)).status == "active"
              retract $(user).status = "active"
            "#,
        )
        .unwrap();
    // State-gated pipeline: count only active users' click activity.
    let store = engine.shared_store();
    let mut g = Graph::new();
    let gate = g.add_op(StateGate::new(store, "user", "status", "active"));
    g.connect_source("clicks", gate);
    let win = g.add_op(
        TimeWindowOp::tumbling(Duration::minutes(5)).aggregate(AggSpec::count("active_clicks")),
    );
    g.connect(gate, win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    engine.set_graph(g).unwrap();
    engine.run(workload.events.iter().cloned());
    engine.finish();

    // Session boundaries are exactly the status facts' validity
    // intervals — count how many the state recorded.
    let store = engine.shared_store();
    let store = store.read().unwrap();
    let users: std::collections::BTreeSet<&str> =
        workload.sessions.iter().map(|s| s.user.as_str()).collect();
    let mut recorded = 0usize;
    let mut exact = 0usize;
    for user in users {
        let Some(u) = store.lookup_entity(user) else {
            continue;
        };
        for (interval, _, _) in store.history(u, "status") {
            recorded += 1;
            let matches_oracle = workload.sessions.iter().any(|s| {
                s.user == user && interval.start == s.start && interval.end == Some(s.end)
            });
            if matches_oracle {
                exact += 1;
            }
        }
    }
    println!(
        "explicit state: {} session intervals recorded; {}/{} match the oracle exactly",
        recorded,
        exact,
        workload.sessions.len()
    );

    let out = sink.take();
    println!(
        "state-gated pipeline produced {} five-minute activity rows (idle traffic never processed)",
        out.len()
    );
}
