//! Quickstart: explicit state in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use fenestra::prelude::*;

fn main() {
    // 1. An engine with a temporal state repository.
    let mut engine = Engine::with_defaults();
    engine.declare_attr("room", AttrSchema::one()); // one room at a time

    // 2. A state management rule: every sensor event *replaces* the
    //    visitor's position — the previous room is invalidated, not
    //    forgotten (its validity interval is closed).
    engine
        .add_rules_text(
            r#"
            rule visitor_moves:
              on sensors
              replace $(visitor).room = room
            "#,
        )
        .expect("valid rule");

    // 3. Feed events (logical time in milliseconds).
    for (ts, visitor, room) in [
        (10u64, "alice", "lobby"),
        (15, "bob", "lobby"),
        (20, "alice", "lab"),
        (30, "alice", "server-room"),
        (35, "bob", "cafeteria"),
    ] {
        engine.push(Event::from_pairs(
            "sensors",
            ts,
            [("visitor", visitor), ("room", room)],
        ));
    }
    engine.finish();

    // 4. Query the *current* state.
    println!("Who is where now?");
    let rows = engine
        .query("select ?v ?r where { ?v room ?r }")
        .expect("valid query");
    for row in rows.rows().expect("select result") {
        println!("  {:?}", row);
    }

    // 5. Query the past: who was in the lobby at t=17?
    let rows = engine
        .query(r#"select ?v where { ?v room "lobby" } asof 17"#)
        .expect("valid query");
    println!("In the lobby at t17: {} visitor(s)", rows.len());
    assert_eq!(rows.len(), 2, "alice and bob were both in the lobby");

    // 6. Full history of one visitor.
    println!("alice's movement history:");
    if let QueryResult::History(h) = engine.query("history alice room").expect("valid") {
        for (interval, room, _prov) in h {
            println!("  {} in {}", interval, room);
        }
    }

    let m = engine.metrics();
    println!(
        "processed {} events, {} state transitions",
        m.events, m.transitions
    );
}
