//! Building security (paper §1, second motivating example).
//!
//! Sensors report a visitor every time she enters a room. The paper's
//! point: a fixed 5-minute window "would lead to the erroneous
//! conclusion that the visitor is simultaneously in multiple rooms",
//! whereas explicit state with invalidate-and-update never contradicts
//! itself. This example measures both on the same synthetic trace.
//!
//! Run with: `cargo run --example building_security`

use fenestra::prelude::*;
use fenestra::workloads::{BuildingConfig, BuildingWorkload};
use std::collections::HashMap;

fn main() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 10,
        rooms: 6,
        mean_dwell_ms: 60_000,  // ~1 minute per room
        duration_ms: 1_800_000, // 30 minutes
        seed: 7,
    });
    println!(
        "trace: {} sensor events, {} visitors x ~{:.0} moves",
        workload.events.len(),
        10,
        workload.mean_moves_per_visitor()
    );

    // ---- The window-based view (what the paper criticizes) ---------------
    // "Current positions" = every (visitor, room) event within the last
    // five minutes, all considered valid.
    let window_ms = 300_000u64;
    let probe = Timestamp::new(900_000); // look at minute 15
    let mut seen: HashMap<&str, Vec<&str>> = HashMap::new();
    for e in &workload.events {
        if e.ts <= probe && e.ts.millis() + window_ms > probe.millis() {
            let v = e.get("visitor").unwrap().as_str().unwrap();
            let r = e.get("room").unwrap().as_str().unwrap();
            seen.entry(v).or_default().push(r);
        }
    }
    let contradicted = seen.values().filter(|rooms| rooms.len() > 1).count();
    println!(
        "\n5-minute window at t=15min: {} of {} observed visitors appear in MULTIPLE rooms",
        contradicted,
        seen.len()
    );

    // ---- The explicit-state view ------------------------------------------
    let mut engine = Engine::with_defaults();
    engine.declare_attr("room", AttrSchema::one());
    engine
        .add_rules_text(
            r#"
            rule visitor_moves:
              on sensors
              replace $(visitor).room = room
            "#,
        )
        .unwrap();
    engine.run(workload.events.iter().cloned());
    engine.finish();

    // Ask the same question via an as-of query: exactly one room each.
    let rows = engine
        .query("select ?v ?r where { ?v room ?r } asof 900000")
        .unwrap();
    println!(
        "explicit state at t=15min: {} visitors, each in exactly one room",
        rows.len()
    );
    // Verify against the oracle.
    let mut correct = 0;
    for row in rows.rows().unwrap() {
        let (v, r) = (&row[0].1, &row[1].1);
        let store = engine.store();
        let name = store
            .entity_name(v.as_id().expect("entity id"))
            .expect("named");
        if workload.true_room_at(name.as_str(), probe) == r.as_str() {
            correct += 1;
        }
    }
    println!("oracle check: {correct}/{} positions correct", rows.len());

    // The history is still there: replay one visitor's afternoon.
    println!("\nv0's movement history (first 5 stays):");
    if let QueryResult::History(h) = engine.query("history v0 room").unwrap() {
        for (interval, room, _) in h.iter().take(5) {
            println!("  {} in {}", interval, room);
        }
        println!("  ... {} stays total", h.len());
    }
}
