//! Vendored API-compatible subset of `bytes`, backed by `Vec<u8>`.
//!
//! Big-endian (network order) reads and writes, matching the real
//! crate's `get_*`/`put_*` defaults. Only the surface used by the
//! workspace's WAL codec is provided.

use std::ops::Deref;

/// Read access to a byte cursor. Implemented for `&[u8]`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Copy `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer. Implemented for
/// [`BytesMut`] and `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable, owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// Clear the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// An immutable, owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { inner: Vec::new() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Borrow the bytes as a vector reference.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { inner: v }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        buf.put_i64(-42);
        buf.put_f64(2.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64(), u64::MAX - 1);
        assert_eq!(rd.get_i64(), -42);
        assert_eq!(rd.get_f64(), 2.5);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!rd.has_remaining());
    }

    #[test]
    fn advance_consumes() {
        let data = [1u8, 2, 3, 4];
        let mut rd: &[u8] = &data;
        rd.advance(2);
        assert_eq!(rd.remaining(), 2);
        assert_eq!(rd.get_u8(), 3);
    }
}
