//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform boolean strategy.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! int_arbitrary {
    ($($t:ty => $strat:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                $strat
            }
        }
    )*};
}

int_arbitrary! {
    u8 => u8::MIN..=u8::MAX,
    u16 => u16::MIN..=u16::MAX,
    u32 => u32::MIN..=u32::MAX,
    u64 => u64::MIN..=u64::MAX,
    i8 => i8::MIN..=i8::MAX,
    i16 => i16::MIN..=i16::MAX,
    i32 => i32::MIN..=i32::MAX,
    i64 => i64::MIN..=i64::MAX,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_varies() {
        let mut rng = TestRng::new(5);
        let strat = any::<bool>();
        let trues = (0..100).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 20 && trues < 80);
    }
}
