//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Permitted lengths for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let strat = vec(0u8..10, 2..5);
        let mut rng = TestRng::new(6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen.insert(v.len());
        }
        assert_eq!(seen.len(), 3);
    }
}
