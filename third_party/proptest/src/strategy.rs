//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of some type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
    }

    /// Build a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy into a deeper one. `depth`
    /// bounds the nesting; the size hints are accepted for API
    /// compatibility but unused (each level mixes leaves in, which
    /// already bounds expected size).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = Union::new(vec![base.clone(), deeper]).boxed();
        }
        level
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Arc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over several strategies for the same type. Built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the candidate strategies. Panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals act as regex-ish string strategies. This shim does
/// not interpret the pattern: every literal produces arbitrary short
/// strings (mixed ASCII, whitespace, and non-ASCII codepoints), which
/// is what the workspace's parser-totality fuzz tests need.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(41) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(100) {
                0..=59 => (0x20 + rng.below(0x5f) as u32) as u8 as char, // printable ASCII
                60..=74 => *['\n', '\t', ' ', '\r'].get(rng.below(4) as usize).unwrap(),
                _ => {
                    // Arbitrary scalar value from the BMP and beyond.
                    loop {
                        if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                            break c;
                        }
                    }
                }
            };
            s.push(c);
        }
        s
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident/$idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::new(1);
        let strat = (0u8..4).prop_map(|v| v as u64 * 10);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && v < 40);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::new(2);
        let strat = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(n) => {
                    let _ = n;
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn string_strategy_is_diverse() {
        let mut rng = TestRng::new(4);
        let strat = "\\PC*";
        let distinct: std::collections::HashSet<String> = (0..50)
            .map(|_| Strategy::generate(&strat, &mut rng))
            .collect();
        assert!(distinct.len() > 20);
    }
}
