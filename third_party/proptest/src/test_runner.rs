//! Deterministic case runner and the types the assertion macros use.

use crate::strategy::Strategy;
use std::fmt;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed case, produced by `prop_assert!`-family macros.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic random source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Run `cases` generated inputs through `test`, panicking on the first
/// failure. Deterministic: the same test sees the same inputs every
/// run.
pub fn run<S, F>(cfg: &ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(0x7072_6f70_7465_7374); // "proptest"
    for case in 0..cfg.cases {
        let value = strategy.generate(&mut rng);
        if let Err(e) = test(value) {
            panic!("proptest case {case}/{} failed: {e}", cfg.cases);
        }
    }
}
