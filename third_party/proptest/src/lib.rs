//! Vendored API-compatible subset of `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use, backed by a deterministic random generator.
//! There is no shrinking: a failing case panics with the assertion
//! message and case number, which is enough to reproduce (the runner
//! is fully deterministic per test).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn roundtrips(x in 0u64..100, s in "\\PC*") { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    (@run($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let strat = ($($strat,)+);
                $crate::test_runner::run(&cfg, &strat, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $fmt:literal $(, $arg:expr)* $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($fmt $(, $arg)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $fmt:literal $(, $arg:expr)* $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    concat!("assertion failed: `{:?}` == `{:?}`: ", $fmt),
                    l, r $(, $arg)*
                ),
            ));
        }
    }};
}
