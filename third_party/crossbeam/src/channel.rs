//! MPMC FIFO channels with crossbeam-compatible semantics.
//!
//! A channel is a `Mutex<VecDeque>` plus two condition variables (one
//! for consumers waiting on data, one for producers waiting on
//! capacity) and sender/receiver reference counts for disconnect
//! detection. Not lock-free — correctness and API compatibility over
//! peak throughput, which is ample for the workloads in this
//! workspace.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<State<T>>,
    /// Consumers wait here for data (or sender disconnect).
    not_empty: Condvar,
    /// Producers wait here for capacity (or receiver disconnect).
    not_full: Condvar,
    capacity: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (messages are delivered
/// to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// An unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// A bounded channel: sends block (or fail, for `try_send`) when `cap`
/// messages are queued.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Send `msg`, blocking while the channel is full. Fails only when
    /// every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.shared);
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if st.items.len() >= cap => {
                    st = match self.shared.not_full.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                _ => break,
            }
        }
        st.items.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Send without blocking; fails with `Full` at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = lock(&self.shared);
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if st.items.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.items.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.shared).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` if unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

impl<T> Receiver<T> {
    /// Receive the next message, blocking while the channel is empty.
    /// Fails only when the channel is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.shared);
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = match self.shared.not_empty.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock(&self.shared);
        if let Some(item) = st.items.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(item);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receive, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.shared);
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, t) = match self.shared.not_empty.wait_timeout(st, deadline - now) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            st = g;
            if t.timed_out() && st.items.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.shared).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// A non-blocking iterator draining currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Non-blocking iterator over queued messages.
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_ends_recv() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded::<i32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn bounded_send_blocks_until_capacity() {
        let (tx, rx) = bounded::<i32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
