//! Vendored API-compatible subset of `crossbeam` (the `channel`
//! module), backed by `std::sync` primitives.
//!
//! Provides multi-producer multi-consumer FIFO channels with the
//! crossbeam semantics the workspace relies on: cloneable senders *and*
//! receivers, disconnect detection on both ends, and optionally bounded
//! capacity with blocking or timed sends.

pub mod channel;
