//! Vendored API-compatible subset of `parking_lot`, backed by
//! `std::sync` primitives.
//!
//! This workspace builds hermetically (no network, no crates.io); the
//! `third_party/` crates provide exactly the API surface the rest of
//! the workspace uses. Poisoning is intentionally ignored — like the
//! real `parking_lot`, a panic while holding a lock does not poison it.

use std::fmt;
use std::sync;

/// A reader-writer lock (non-poisoning facade over [`sync::RwLock`]).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A mutual-exclusion lock (non-poisoning facade over [`sync::Mutex`]).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex around `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety of the facade: we temporarily move the inner guard
        // out to hand it to std's wait, then put the returned one back.
        take_mut(&mut guard.0, |g| match self.0.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let mut timed_out = false;
        take_mut(&mut guard.0, |g| match self.0.wait_timeout(g, timeout) {
            Ok((g, t)) => {
                timed_out = t.timed_out();
                g
            }
            Err(p) => {
                let (g, t) = p.into_inner();
                timed_out = t.timed_out();
                g
            }
        });
        timed_out
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Replace `*dest` through a by-value transform. Aborts the process if
/// `f` panics (the value would otherwise be lost); `f` here only calls
/// `Condvar::wait`, which does not panic.
fn take_mut<T, F: FnOnce(T) -> T>(dest: &mut T, f: F) {
    unsafe {
        let old = std::ptr::read(dest);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(dest, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_and_condvar() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }
}
