//! Vendored API-compatible subset of `criterion`.
//!
//! A minimal wall-clock harness: no statistics, plots, or baselines —
//! each benchmark is timed over `sample_size` iterations and the mean
//! is printed. When the target runs under `cargo test` (cargo passes
//! `--test` to `harness = false` bench targets), every benchmark body
//! executes exactly once so the suite stays fast while still
//! exercising the bench code paths.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and run-mode detection.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            quick,
            sample_size: 100,
            throughput: None,
        }
    }
}

/// Units of work per iteration, for ops/sec reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    quick: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.quick, self.sample_size);
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run a benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.quick, self.sample_size);
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Finish the group. (All reporting already happened inline.)
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            return;
        }
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        let mut line = format!("{}/{}: {:.0} ns/iter", self.name, id, per_iter);
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if count > 0 && per_iter > 0.0 {
                let rate = count as f64 / (per_iter / 1e9);
                line.push_str(&format!(" ({rate:.0} {unit}/s)"));
            }
        }
        println!("{line}");
    }
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

/// How `iter_batched` amortizes setup; accepted for API compatibility
/// (every batch size behaves like per-iteration setup here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

impl Bencher {
    fn new(quick: bool, sample_size: usize) -> Bencher {
        Bencher {
            quick,
            sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    fn planned_iters(&self) -> u64 {
        if self.quick {
            1
        } else {
            self.sample_size as u64
        }
    }

    /// Time `routine` over the planned number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let n = self.planned_iters();
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = self.planned_iters();
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = n;
    }
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_iters() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| runs += v, BatchSize::SmallInput)
        });
        g.finish();
        assert!(runs > 0);
    }
}
