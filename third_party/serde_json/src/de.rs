//! Recursive-descent JSON parser (RFC 8259).

use crate::{Map, Number, Value};
use std::fmt;

/// A parse error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the error.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.msg, self.line, self.column
        )
    }
}

impl std::error::Error for Error {}

/// Nesting depth limit: parsing is recursive, and adversarial inputs
/// (`[[[[...`) must error rather than overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`]. Trailing
/// non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error {
            msg: msg.to_owned(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(out)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(out)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unpaired surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; re-decode it.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number (no fraction digits)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number (no exponent digits)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if neg {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::from(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_structures() {
        let v = from_str(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[2].get("b").unwrap().is_null());
    }

    #[test]
    fn escapes_round_trip() {
        let v = from_str(r#""a\"b\\c\nd\u0041\uD83E\uDD80""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA🦀"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"\\q\"",
            "\"unterminated",
            "1 2",
            "[1]]",
            "--1",
            "+1",
            "\"\\uD800\"",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_gracefully() {
        let s = "[".repeat(100_000);
        assert!(from_str(&s).is_err());
    }

    #[test]
    fn error_position() {
        let e = from_str("{\"a\": nope}").unwrap_err();
        assert_eq!(e.line(), 1);
        assert!(e.column() >= 7, "column {}", e.column());
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn unicode_strings() {
        let v = from_str("\"𝕊 ≤ 𝕋 🦀\"").unwrap();
        assert_eq!(v.as_str(), Some("𝕊 ≤ 𝕋 🦀"));
    }

    #[test]
    fn integer_boundaries() {
        assert_eq!(
            from_str("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            from_str("-9223372036854775808").unwrap().as_i64(),
            Some(i64::MIN)
        );
        // Beyond u64: falls back to float.
        assert!(from_str("18446744073709551616").unwrap().as_f64().is_some());
    }
}
