//! Compact JSON writer: `Display` for [`Value`].

use crate::Value;
use std::fmt::{self, Write};

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_char(']')
            }
            Value::Object(map) => {
                f.write_char('{')?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write_escaped(f, k)?;
                    f.write_char(':')?;
                    write!(f, "{v}")?;
                }
                f.write_char('}')
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

#[cfg(test)]
mod tests {
    use crate::{from_str, Map, Number, Value};

    #[test]
    fn writer_parser_round_trip() {
        let mut obj = Map::new();
        obj.insert("s".into(), Value::from("a\"b\\c\n\u{0007}🦀"));
        obj.insert("n".into(), Value::from(-3i64));
        obj.insert("f".into(), Value::Number(Number::from_f64(2.5).unwrap()));
        obj.insert(
            "whole".into(),
            Value::Number(Number::from_f64(3.0).unwrap()),
        );
        obj.insert(
            "a".into(),
            Value::Array(vec![Value::Null, Value::Bool(true)]),
        );
        let v = Value::Object(obj);
        let text = v.to_string();
        let back = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let v = Value::Number(Number::from_f64(10.0).unwrap());
        assert_eq!(v.to_string(), "10.0");
        assert_eq!(from_str("10.0").unwrap().as_f64(), Some(10.0));
        assert_eq!(from_str("10.0").unwrap().as_u64(), None);
    }
}
