//! Vendored API-compatible subset of `serde_json`.
//!
//! Provides the dynamically-typed [`Value`] model with a conforming
//! parser ([`from_str`]) and compact writer ([`Display`] /
//! [`to_string`]). There is no `serde` data-model plumbing here — the
//! workspace serializes via `Value` directly, which is all the real
//! crate was used for.
//!
//! [`Display`]: std::fmt::Display

mod de;
mod ser;

pub use de::{from_str, Error};

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Insertion-ordered.
    Object(Map<String, Value>),
}

/// A JSON number: non-negative integer, negative integer, or float —
/// mirroring `serde_json::Number`'s three internal representations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// As `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// As `i64` if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(n) => i64::try_from(n).ok(),
            N::NegInt(n) => Some(n),
            N::Float(_) => None,
        }
    }

    /// As `f64` (always succeeds, possibly lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::PosInt(n) => n as f64,
            N::NegInt(n) => n as f64,
            N::Float(f) => f,
        })
    }

    /// Build from a finite `f64`; `None` for NaN or infinity.
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number(N::Float(f)))
    }

    /// Whether this number is an integer representable as `u64`.
    pub fn is_u64(&self) -> bool {
        matches!(self.0, N::PosInt(_))
    }

    /// Whether this number is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }
}

impl From<u64> for Number {
    fn from(n: u64) -> Number {
        Number(N::PosInt(n))
    }
}

impl From<u32> for Number {
    fn from(n: u32) -> Number {
        Number(N::PosInt(n as u64))
    }
}

impl From<usize> for Number {
    fn from(n: usize) -> Number {
        Number(N::PosInt(n as u64))
    }
}

impl From<i64> for Number {
    fn from(n: i64) -> Number {
        if n < 0 {
            Number(N::NegInt(n))
        } else {
            Number(N::PosInt(n as u64))
        }
    }
}

impl From<i32> for Number {
    fn from(n: i32) -> Number {
        Number::from(n as i64)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(n) => write!(f, "{n}"),
            N::NegInt(n) => write!(f, "{n}"),
            N::Float(x) => {
                // Round-trippable float syntax: always keep a decimal
                // point or exponent so the value re-parses as a float.
                if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (linear lookup — JSON objects
/// in this workspace are small).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert `value` under `key`, replacing (in place) any previous
    /// value. Returns the previous value if present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Value {
    /// Index into an object by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n.into())
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n.into())
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(n.into())
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n.into())
    }
}

/// Serialize a [`Value`] to a compact JSON string. Infallible for the
/// `Value` model; the `Result` mirrors the real crate's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
        m.insert("z".into(), Value::from(3u64));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("z").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn number_representations() {
        assert_eq!(Number::from(5u64).as_u64(), Some(5));
        assert_eq!(Number::from(-5i64).as_i64(), Some(-5));
        assert_eq!(Number::from(-5i64).as_u64(), None);
        assert!(Number::from_f64(f64::NAN).is_none());
        assert_eq!(Number::from_f64(2.5).unwrap().as_f64(), Some(2.5));
        assert_eq!(Number::from_f64(2.5).unwrap().as_u64(), None);
    }
}
