//! Vendored API-compatible subset of `rand_distr`: the [`Distribution`]
//! trait plus the two distributions the workload generators use,
//! [`LogNormal`] (Box–Muller) and [`Zipf`] (exact inverse-CDF over a
//! precomputed table).

use rand::{Rng, RngCore};

/// Types that can be sampled with an [`Rng`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Log-normal distribution: `exp(mu + sigma * Z)` for standard normal `Z`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Build from the mean and standard deviation of the underlying
    /// normal. `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1 = 1.0 - unit(rng);
    let u2 = unit(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Zipf distribution over `1..=n` with exponent `s`: rank `k` drawn
/// with probability proportional to `1 / k^s`. Samples are returned as
/// `f64` holding the integer rank, matching the real crate.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights; `cdf[k-1]` covers ranks `1..=k`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` elements with exponent `s >= 0`.
    pub fn new(n: u64, s: f64) -> Result<Zipf, Error> {
        if n == 0 {
            return Err(Error("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(Error("Zipf requires finite s >= 0"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let total = *self.cdf.last().expect("n >= 1");
        let needle = unit(rng) * total;
        let idx = self.cdf.partition_point(|&c| c <= needle);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(1.0, 0.5).is_ok());
    }

    #[test]
    fn lognormal_is_positive_and_centered() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum_ln = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x > 0.0);
            sum_ln += x.ln();
        }
        // ln(X) ~ Normal(0, 0.5): the sample mean should be near 0.
        assert!((sum_ln / n as f64).abs() < 0.05);
    }

    #[test]
    fn zipf_ranks_in_range_and_skewed() {
        let d = Zipf::new(100, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut first = 0usize;
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&k));
            assert_eq!(k, k.trunc());
            if k == 1.0 {
                first += 1;
            }
        }
        // Rank 1 should dominate a uniform's 1% share by a wide margin.
        assert!(first > 1000, "rank-1 draws: {first}");
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(1, 0.0).is_ok());
    }
}
