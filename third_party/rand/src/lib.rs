//! Vendored API-compatible subset of `rand`.
//!
//! Provides [`rngs::StdRng`] (a SplitMix64-based generator — not the
//! real crate's ChaCha, but deterministic and well-distributed, which
//! is all the workload generators need), the [`SeedableRng`] and
//! [`Rng`] traits, and integer/float range sampling.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that a range can be sampled over.
pub trait SampleRange<T> {
    /// Draw a uniform value from this range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Map 64 random bits to a float in `[0, 1)`.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        // Inclusive upper bound is actually reachable.
        let mut hit_top = false;
        for _ in 0..1000 {
            if rng.gen_range(0u8..=3) == 3 {
                hit_top = true;
            }
        }
        assert!(hit_top);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits={hits}");
    }
}
