//! The `fenestra` command-line tool.
//!
//! ```text
//! fenestra run --rules RULES.fen --events EVENTS.jsonl
//!              [--attr name:one|many]... [--save STATE.json]
//!              [--query "select ..."]...
//!     Feed a JSONL event log through a rule program, print metrics,
//!     optionally run queries against the resulting state and/or save
//!     a state snapshot.
//!
//! fenestra query --state STATE.json "select ?v where { ?v room ?r }"
//!     Run one query against a saved state snapshot.
//!
//! fenestra demo
//!     A self-contained demonstration (no files needed).
//! ```

use fenestra::core::{Engine, EngineConfig, QueryResult};
use fenestra::io::events_from_jsonl;
use fenestra::prelude::*;
use fenestra::temporal::persist;
use fenestra::temporal::TemporalStore;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
fenestra — explicit state management for stream processing

USAGE:
  fenestra run --rules FILE --events FILE [--attr name:one]...
               [--ontology FILE] [--save FILE] [--query TEXT]...
               [--lateness MS] [--metrics-json]
  fenestra query --state FILE QUERY
  fenestra inspect --state FILE
  fenestra demo
";

fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn take_all(args: &mut Vec<String>, flag: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    while let Some(v) = take_opt(args, flag)? {
        out.push(v);
    }
    Ok(out)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let rules_path = take_opt(&mut args, "--rules")?.ok_or("run needs --rules FILE")?;
    let events_path = take_opt(&mut args, "--events")?.ok_or("run needs --events FILE")?;
    let save = take_opt(&mut args, "--save")?;
    let lateness: u64 = take_opt(&mut args, "--lateness")?
        .map(|s| s.parse().map_err(|_| "--lateness must be an integer"))
        .transpose()?
        .unwrap_or(0);
    let attrs = take_all(&mut args, "--attr")?;
    let queries = take_all(&mut args, "--query")?;
    let ontology = take_opt(&mut args, "--ontology")?;
    let metrics_json = take_flag(&mut args, "--metrics-json");
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let mut engine = Engine::new(EngineConfig {
        max_lateness: Duration::millis(lateness),
        auto_reason: ontology.is_some(),
        ..EngineConfig::default()
    });
    if let Some(path) = &ontology {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let ont = fenestra::reason::parse_ontology(&src).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "loaded ontology with {} axiom(s) from {path}",
            ont.axioms().len()
        );
        engine.set_ontology(ont);
    }
    for spec in attrs {
        let (name, card) = spec
            .split_once(':')
            .ok_or_else(|| format!("--attr `{spec}` must be name:one or name:many"))?;
        let schema = match card {
            "one" => AttrSchema::one(),
            "many" => AttrSchema::many(),
            other => return Err(format!("unknown cardinality `{other}`")),
        };
        engine.declare_attr(name, schema);
    }

    let rules_src =
        std::fs::read_to_string(&rules_path).map_err(|e| format!("{rules_path}: {e}"))?;
    let n = engine
        .add_rules_text(&rules_src)
        .map_err(|e| format!("{rules_path}: {e}"))?;
    eprintln!("loaded {n} rule(s) from {rules_path}");

    let events_src =
        std::fs::read_to_string(&events_path).map_err(|e| format!("{events_path}: {e}"))?;
    let events = events_from_jsonl(&events_src).map_err(|e| format!("{events_path}: {e}"))?;
    eprintln!("feeding {} event(s) from {events_path}", events.len());
    engine.run(events);
    engine.finish();

    let m = engine.metrics();
    if metrics_json {
        // One machine-readable JSON object on stdout — same shape the
        // fenestrad `stats` command reports under "engine".
        println!("{}", fenestra::wire::metrics::metrics_to_json(&m));
    } else {
        eprintln!(
            "done: {} events ({} late-dropped), {} rule firings, {} transitions, {} guard-blocked, {} errors",
            m.events, m.late_dropped, m.rule_fired, m.transitions, m.guard_blocked, m.rule_errors
        );
    }

    for q in queries {
        let r = engine.query(&q).map_err(|e| e.to_string())?;
        let store = engine.store();
        print_result(&q, r, Some(&store));
    }
    if let Some(path) = save {
        let store = engine.store();
        persist::save(&store, &path).map_err(|e| e.to_string())?;
        eprintln!("state snapshot written to {path}");
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let state_path = take_opt(&mut args, "--state")?.ok_or("query needs --state FILE")?;
    if args.len() != 1 {
        return Err("query needs exactly one query string".into());
    }
    let store = persist::load(&state_path).map_err(|e| format!("{state_path}: {e}"))?;
    let q = &args[0];
    let plan = fenestra::query::compile(q).map_err(|e| e.to_string())?;
    let out = plan
        .execute(&store, fenestra::query::QueryOptions::default())
        .map_err(|e| e.to_string())?;
    match out {
        fenestra::query::PlanOutput::Rows(rows) => {
            print_result(q, QueryResult::Rows(rows), Some(&store));
        }
        fenestra::query::PlanOutput::History(spans) => {
            print_result(q, QueryResult::History(spans), Some(&store));
        }
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let state_path = take_opt(&mut args, "--state")?.ok_or("inspect needs --state FILE")?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let store = persist::load(&state_path).map_err(|e| format!("{state_path}: {e}"))?;
    println!("state snapshot: {state_path}");
    println!("  revision:         {}", store.revision());
    println!("  last transition:  {}", store.last_transition());
    println!("  named entities:   {}", store.named_entities().count());
    println!("  open facts:       {}", store.open_fact_count());
    println!("  stored facts:     {}", store.stored_fact_count());
    let stats = store.stats();
    println!(
        "  transitions:      {} ({} asserts, {} retracts, {} replaces)",
        stats.transitions(),
        stats.asserts,
        stats.retracts,
        stats.replaces
    );
    println!("  open facts per attribute:");
    for (attr, n) in store.open_attr_counts() {
        println!("    {attr:20} {n}");
    }
    Ok(())
}

/// Render a value, resolving entity ids to their registered names.
fn show(v: &Value, store: Option<&TemporalStore>) -> String {
    if let (Value::Id(e), Some(s)) = (v, store) {
        if let Some(name) = s.entity_name(*e) {
            return name.as_str().to_owned();
        }
    }
    v.to_string()
}

fn print_result(q: &str, r: QueryResult, store: Option<&TemporalStore>) {
    println!("query> {q}");
    match r {
        QueryResult::Rows(rows) => {
            for row in &rows {
                let cells: Vec<String> = row
                    .iter()
                    .map(|(n, v)| format!("?{n}={}", show(v, store)))
                    .collect();
                println!("  {}", cells.join("  "));
            }
            println!("  ({} row(s))", rows.len());
        }
        QueryResult::History(h) => {
            for (iv, v, prov) in &h {
                println!("  {iv} {v} [{prov}]");
            }
            println!("  ({} interval(s))", h.len());
        }
    }
}

fn cmd_demo() -> Result<(), String> {
    let mut engine = Engine::with_defaults();
    engine.declare_attr("room", AttrSchema::one());
    engine
        .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
        .map_err(|e| e.to_string())?;
    let jsonl = r#"
        {"stream":"sensors","ts":10,"visitor":"alice","room":"lobby"}
        {"stream":"sensors","ts":15,"visitor":"bob","room":"lobby"}
        {"stream":"sensors","ts":20,"visitor":"alice","room":"lab"}
    "#;
    engine.run(events_from_jsonl(jsonl).map_err(|e| e.to_string())?);
    engine.finish();
    let rows = engine
        .query("select ?v ?r where { ?v room ?r }")
        .map_err(|e| e.to_string())?;
    let hist = engine
        .query("history alice room")
        .map_err(|e| e.to_string())?;
    let store = engine.store();
    print_result("select ?v ?r where { ?v room ?r }", rows, Some(&store));
    print_result("history alice room", hist, Some(&store));
    Ok(())
}
