#![warn(missing_docs)]
//! # Fenestra
//!
//! *Break the windows*: explicit state management for stream
//! processing — a complete prototype of the model proposed by Margara,
//! Dell'Aglio & Bernstein (EDBT 2017).
//!
//! Instead of forcing every computation through fixed-size windows,
//! Fenestra makes state a first-class object:
//!
//! * **state repository** — a temporal fact store where every element
//!   carries its time of validity ([`temporal`]);
//! * **state management rules** — declarative rules (single-event or
//!   CEP-pattern triggers) that translate streams into state
//!   transitions, including invalidate-and-update ([`rules`],
//!   [`cep`]);
//! * **stream processing** — a CQL-style window dataflow that can
//!   *also* read state (gates, enrichment joins) ([`stream`]);
//! * **queryable state** — on-demand queries over current and
//!   historical state ([`query`]);
//! * **reasoning** — RDFS-plus ontologies materialized into the store
//!   ([`reason`]);
//! * **the engine** — all of the above wired per the paper's Figure 1,
//!   with configurable state/stream interaction semantics ([`core`]).
//!
//! ## Quickstart
//!
//! ```
//! use fenestra::prelude::*;
//!
//! let mut engine = Engine::with_defaults();
//! engine.declare_attr("room", AttrSchema::one());
//! engine.add_rules_text(r#"
//!     rule visitor_moves:
//!       on sensors
//!       replace $(visitor).room = room
//! "#).unwrap();
//!
//! engine.push(Event::from_pairs("sensors", 10u64,
//!     [("visitor", "alice"), ("room", "lobby")]));
//! engine.push(Event::from_pairs("sensors", 20u64,
//!     [("visitor", "alice"), ("room", "lab")]));
//! engine.finish();
//!
//! // Current state: alice is in the lab (the lobby fact was
//! // invalidated, not forgotten).
//! let rows = engine.query(r#"select ?v where { ?v room "lab" }"#).unwrap();
//! assert_eq!(rows.len(), 1);
//! // Historical state: where was alice at t15?
//! let rows = engine.query(r#"select ?v where { ?v room "lobby" } asof 15"#).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod io;

pub use fenestra_base as base;
pub use fenestra_cep as cep;
pub use fenestra_core as core;
pub use fenestra_query as query;
pub use fenestra_reason as reason;
pub use fenestra_rules as rules;
pub use fenestra_server as server;
pub use fenestra_stream as stream;
pub use fenestra_temporal as temporal;
pub use fenestra_wire as wire;
pub use fenestra_workloads as workloads;

/// The most commonly used names, re-exported flat.
pub mod prelude {
    pub use fenestra_base::expr::Expr;
    pub use fenestra_base::record::{Event, Record};
    pub use fenestra_base::time::{Duration, Interval, Timestamp};
    pub use fenestra_base::value::{EntityId, Value};
    pub use fenestra_core::{
        Engine, EngineConfig, EngineMetrics, QueryResult, Semantics, ShardedEngine,
    };
    pub use fenestra_query::{parse_query, Query, QueryOptions, Term, TimeSpec};
    pub use fenestra_reason::{Axiom, Ontology};
    pub use fenestra_rules::{Action, EntityRef, Guard, StateRule, Trigger};
    pub use fenestra_stream::prelude::*;
    pub use fenestra_temporal::{AttrSchema, Cardinality, Provenance, TemporalStore};
}
