//! JSON-lines event interchange — re-exported from [`fenestra_wire`],
//! which also serves the `fenestrad` network server. Existing
//! `fenestra::io::*` callers are unaffected by the move.

pub use fenestra_wire::{
    event_from_json, event_to_json, events_from_jsonl, metrics, value_to_json,
};
