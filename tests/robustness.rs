//! Failure-injection integration tests: out-of-order delivery,
//! duplicates, late data, malformed inputs, and process crashes
//! (`kill -9` against a fenestrad with a durable WAL).

use fenestra::prelude::*;
use fenestra::workloads::ooo;
use fenestra::workloads::{BuildingConfig, BuildingWorkload};

fn move_rule_engine(lateness_ms: u64) -> Engine {
    let mut engine = Engine::new(EngineConfig {
        max_lateness: Duration::millis(lateness_ms),
        ..EngineConfig::default()
    });
    engine.declare_attr("room", AttrSchema::one());
    engine
        .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
        .unwrap();
    engine
}

/// Bounded out-of-order delivery with a sufficient lateness bound is
/// fully reordered: the final state equals in-order processing.
#[test]
fn out_of_order_delivery_is_transparent_within_bound() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 10,
        rooms: 6,
        mean_dwell_ms: 10_000,
        duration_ms: 300_000,
        seed: 9,
    });
    let shuffled = ooo::perturb(&workload.events, 5_000, 21);
    assert!(ooo::max_disorder(&shuffled) > 0, "perturbation effective");

    let mut ordered = move_rule_engine(0);
    ordered.run(workload.events.iter().cloned());
    ordered.finish();

    let mut disordered = move_rule_engine(5_000);
    disordered.run(shuffled);
    disordered.finish();
    assert_eq!(disordered.metrics().late_dropped, 0);

    let a = ordered.store();
    let b = disordered.store();
    for v in 0..10 {
        let name = format!("v{v}");
        let ea = a.lookup_entity(name.as_str()).unwrap();
        let eb = b.lookup_entity(name.as_str()).unwrap();
        assert_eq!(a.history(ea, "room"), b.history(eb, "room"), "{name}");
    }
}

/// Beyond the lateness bound, events are dropped and counted — never
/// applied retroactively.
#[test]
fn late_events_beyond_bound_are_dropped_not_misapplied() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 5,
        rooms: 4,
        mean_dwell_ms: 5_000,
        duration_ms: 100_000,
        seed: 2,
    });
    let shuffled = ooo::perturb(&workload.events, 20_000, 4);
    let mut engine = move_rule_engine(1_000); // bound far below disorder
    engine.run(shuffled);
    engine.finish();
    let m = engine.metrics();
    assert!(m.late_dropped > 0, "some events must be late");
    assert_eq!(m.events + m.late_dropped, workload.events.len() as u64);
    // Remaining history is still temporally sane: intervals per
    // visitor never overlap.
    let store = engine.store();
    for v in 0..5 {
        let name = format!("v{v}");
        let Some(e) = store.lookup_entity(name.as_str()) else {
            continue;
        };
        let h = store.history(e, "room");
        for w in h.windows(2) {
            assert!(
                w[0].0.end.is_some_and(|end| end <= w[1].0.start),
                "overlapping intervals for {name}"
            );
        }
    }
}

/// At-least-once delivery: duplicated events do not duplicate state
/// (replace is idempotent on identical values).
#[test]
fn duplicate_events_are_idempotent_on_state() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 6,
        rooms: 5,
        mean_dwell_ms: 8_000,
        duration_ms: 150_000,
        seed: 13,
    });
    let dup = ooo::with_duplicates(&workload.events, 0.3, 8);
    assert!(dup.len() > workload.events.len());

    let mut clean = move_rule_engine(0);
    clean.run(workload.events.iter().cloned());
    clean.finish();
    let mut dirty = move_rule_engine(0);
    dirty.run(dup);
    dirty.finish();

    let a = clean.store();
    let b = dirty.store();
    assert_eq!(a.stored_fact_count(), b.stored_fact_count());
    for v in 0..6 {
        let name = format!("v{v}");
        let ea = a.lookup_entity(name.as_str()).unwrap();
        let eb = b.lookup_entity(name.as_str()).unwrap();
        assert_eq!(a.history(ea, "room"), b.history(eb, "room"));
    }
    // The duplicates fired rules but changed nothing.
    assert!(dirty.metrics().rule_fired > clean.metrics().rule_fired);
    assert_eq!(dirty.metrics().transitions, clean.metrics().transitions);
}

/// Malformed rule/query texts produce parse errors with positions, and
/// never panic.
#[test]
fn malformed_inputs_error_cleanly() {
    let mut engine = Engine::with_defaults();
    for bad_rule in [
        "rule:",
        "rule x on s assert $(u).a = 1",
        "rule x: on s assert $(u).a =",
        "rule x: on pattern within 5s assert $(u).a = 1",
        "완전히 잘못된 입력",
    ] {
        assert!(engine.add_rules_text(bad_rule).is_err(), "{bad_rule}");
    }
    for bad_query in [
        "select",
        "select ?x where { }",
        "history",
        "select ?x where { ?x a \"b\" } asof -5",
    ] {
        assert!(engine.query(bad_query).is_err(), "{bad_query}");
    }
    // Engine still usable afterwards.
    engine
        .add_rules_text("rule ok:\n on s\n replace $(u).a = 1")
        .unwrap();
    engine.push(Event::from_pairs("s", 1u64, [("u", "x")]));
    engine.finish();
    assert_eq!(engine.metrics().transitions, 1);
}

/// Rule actions that hit store errors surface in metrics but do not
/// poison the engine.
#[test]
fn store_level_errors_are_contained() {
    let mut engine = Engine::with_defaults();
    engine.declare_attr("slot", AttrSchema::one());
    // Bad rule: asserts into a cardinality-one attribute without
    // replace; second event conflicts.
    engine
        .add_rules_text("rule bad:\n on s\n assert $(u).slot = v")
        .unwrap();
    engine.push(Event::from_pairs("s", 1u64, [("u", "x"), ("v", "a")]));
    engine.push(Event::from_pairs("s", 2u64, [("u", "x"), ("v", "b")]));
    engine.finish();
    let m = engine.metrics();
    assert_eq!(m.rule_errors, 1, "cardinality conflict reported");
    assert_eq!(m.transitions, 1, "first assert applied");
    let store = engine.store();
    let e = store.lookup_entity("x").unwrap();
    assert_eq!(store.current().value(e, "slot"), Some(Value::str("a")));
}

// ----- crash recovery (fenestrad subprocess, kill -9) -----------------------

mod crash {
    use serde_json::Value as Json;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::path::{Path, PathBuf};
    use std::process::{Child, Command, Stdio};

    /// The fenestrad binary, built on demand if this test package was
    /// compiled without the server package's binaries.
    fn fenestrad_bin() -> PathBuf {
        let target_dir = Path::new(env!("CARGO_BIN_EXE_fenestra"))
            .parent()
            .expect("binary dir")
            .to_path_buf();
        let bin = target_dir.join(format!("fenestrad{}", std::env::consts::EXE_SUFFIX));
        if !bin.exists() {
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
            let mut cmd = Command::new(cargo);
            cmd.current_dir(env!("CARGO_MANIFEST_DIR")).args([
                "build",
                "-p",
                "fenestra-server",
                "--bin",
                "fenestrad",
            ]);
            if target_dir.file_name().is_some_and(|n| n == "release") {
                cmd.arg("--release");
            }
            let status = cmd.status().expect("cargo build fenestrad");
            assert!(status.success(), "building fenestrad failed");
        }
        bin
    }

    /// A running fenestrad over a state directory.
    struct Daemon {
        child: Child,
        addr: String,
    }

    impl Daemon {
        fn spawn(dir: &Path, extra: &[&str]) -> Daemon {
            let rules = dir.join("rules.txt");
            std::fs::write(&rules, "rule mv:\n on s\n replace $(visitor).room = room\n").unwrap();
            let mut child = Command::new(fenestrad_bin())
                .arg("--addr")
                .arg("127.0.0.1:0")
                .arg("--snapshot")
                .arg(dir.join("state.json"))
                .arg("--wal")
                .arg(dir.join("log"))
                .arg("--rules")
                .arg(&rules)
                .args(extra)
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn fenestrad");
            // The daemon announces its bound address on stderr.
            let stderr = child.stderr.take().unwrap();
            let mut reader = BufReader::new(stderr);
            let addr = loop {
                let mut line = String::new();
                assert!(
                    reader.read_line(&mut line).unwrap() > 0,
                    "fenestrad exited before announcing its address"
                );
                if let Some(rest) = line.trim().strip_prefix("fenestrad: listening on ") {
                    break rest.to_string();
                }
            };
            // Keep draining stderr so the child never blocks on a full
            // pipe.
            std::thread::spawn(move || {
                for line in reader.lines() {
                    if line.is_err() {
                        break;
                    }
                }
            });
            Daemon { child, addr }
        }

        fn connect(&self) -> Conn {
            let stream = TcpStream::connect(&self.addr).expect("connect to fenestrad");
            let reader = BufReader::new(stream.try_clone().unwrap());
            Conn { stream, reader }
        }

        /// SIGKILL — no drain, no snapshot, no fsync beyond what the
        /// WAL policy already guaranteed.
        fn kill9(mut self) {
            self.child.kill().expect("kill -9 fenestrad");
            self.child.wait().expect("reap fenestrad");
        }

        fn shutdown(mut self) {
            let mut c = self.connect();
            let v = c.call(r#"{"cmd":"shutdown"}"#);
            assert!(v.get("bye").is_some(), "graceful shutdown: {v}");
            self.child.wait().expect("reap fenestrad");
        }
    }

    struct Conn {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Conn {
        fn send(&mut self, line: &str) {
            writeln!(self.stream, "{line}").unwrap();
        }

        fn recv(&mut self) -> Json {
            let mut line = String::new();
            assert!(self.reader.read_line(&mut line).unwrap() > 0, "EOF");
            serde_json::from_str(line.trim()).expect("reply is JSON")
        }

        fn call(&mut self, line: &str) -> Json {
            self.send(line);
            self.recv()
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fenestra-crash-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Ingest `n` events (each moves a fresh visitor into a room), ack
    /// every one, then issue a `sync` barrier: its reply proves every
    /// acked event has been applied and — under `--fsync always` —
    /// fsynced. Returns a `stats` reply taken after the barrier
    /// (`stats` itself reads atomics and is not a barrier).
    fn ingest_acked(c: &mut Conn, n: u64) -> Json {
        for i in 1..=n {
            c.send(&format!(
                r#"{{"stream":"s","ts":{i},"visitor":"v{i}","room":"r{i}"}}"#
            ));
        }
        for i in 1..=n {
            let v = c.recv();
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(true),
                "ack {i}: {v}"
            );
        }
        let v = c.call(r#"{"cmd":"sync"}"#);
        assert_eq!(
            v.get("synced").and_then(Json::as_bool),
            Some(true),
            "sync barrier: {v}"
        );
        c.call(r#"{"cmd":"stats"}"#)
    }

    fn counter(stats: &Json, key: &str) -> u64 {
        stats
            .get("server")
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing server.{key} in {stats}"))
    }

    fn occupied_rooms(c: &mut Conn) -> usize {
        let v = c.call(r#"{"cmd":"query","q":"select ?v ?r where { ?v room ?r }"}"#);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
        v.get("rows").and_then(Json::as_array).unwrap().len()
    }

    /// kill -9 after acked ingest under `--fsync always`: every acked
    /// transition survives the crash. `--batch-max 1` disables group
    /// commit so the per-event framing assertions hold exactly.
    #[test]
    fn kill9_loses_nothing_with_fsync_always() {
        let dir = tmp_dir("always");
        const N: u64 = 50;

        let daemon = Daemon::spawn(&dir, &["--fsync", "always", "--batch-max", "1"]);
        let mut c = daemon.connect();
        let stats = ingest_acked(&mut c, N);
        let fsyncs = counter(&stats, "fsyncs");
        assert!(fsyncs >= N, "one fsync per applied batch, got {fsyncs}");
        daemon.kill9();

        let daemon = Daemon::spawn(&dir, &["--fsync", "always"]);
        let mut c = daemon.connect();
        assert_eq!(
            occupied_rooms(&mut c),
            N as usize,
            "all acked events survive"
        );
        let stats = c.call(r#"{"cmd":"stats"}"#);
        assert!(
            counter(&stats, "recovered_ops") > 0,
            "boot replayed the WAL: {stats}"
        );
        assert_eq!(counter(&stats, "wal_discarded_bytes"), 0);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A hand-truncated WAL tail (as a crash mid-write would leave it)
    /// recovers to the longest valid prefix, reports the damage, and
    /// keeps serving. `--batch-max 1` keeps one event per WAL frame so
    /// tearing the final frame loses exactly one event.
    #[test]
    fn truncated_wal_tail_recovers_prefix_and_counts_damage() {
        let dir = tmp_dir("torn");
        const N: u64 = 20;

        // `--shards 1` pins the legacy single-WAL layout this test
        // tears into by file name.
        let daemon = Daemon::spawn(
            &dir,
            &["--shards", "1", "--fsync", "always", "--batch-max", "1"],
        );
        let mut c = daemon.connect();
        ingest_acked(&mut c, N);
        daemon.kill9();

        // No checkpoint ran, so everything lives in generation 0. Tear
        // its final frame mid-payload.
        let seg = dir.join("log.0");
        let len = std::fs::metadata(&seg).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let daemon = Daemon::spawn(&dir, &["--shards", "1", "--fsync", "always"]);
        let mut c = daemon.connect();
        assert_eq!(
            occupied_rooms(&mut c),
            N as usize - 1,
            "the torn final event is gone, the prefix survives"
        );
        let stats = c.call(r#"{"cmd":"stats"}"#);
        assert!(
            counter(&stats, "wal_discarded_bytes") > 0,
            "recovery reports the torn bytes: {stats}"
        );

        // The boot checkpoint already rotated past the damage; another
        // restart is clean.
        daemon.shutdown();
        let daemon = Daemon::spawn(&dir, &["--shards", "1", "--fsync", "always"]);
        let mut c = daemon.connect();
        assert_eq!(occupied_rooms(&mut c), N as usize - 1);
        let stats = c.call(r#"{"cmd":"stats"}"#);
        assert_eq!(
            counter(&stats, "wal_discarded_bytes"),
            0,
            "damage does not persist across checkpoints: {stats}"
        );
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Group commit under `--fsync always`: acks are held until the
    /// covering WAL fsync completes, so the moment a client has read a
    /// batch ack, `kill -9` cannot lose those events — no `stats`
    /// barrier needed, reading the ack *is* the durability barrier.
    #[test]
    fn kill9_after_batched_acks_loses_nothing() {
        let dir = tmp_dir("group");
        const BATCHES: u64 = 10;
        const PER: u64 = 25;

        let daemon = Daemon::spawn(&dir, &["--fsync", "always"]);
        let mut c = daemon.connect();
        // Pipeline all batch frames first so the engine can group-commit
        // across them, then read the (deferred) acks.
        for b in 0..BATCHES {
            let events: Vec<String> = (1..=PER)
                .map(|i| {
                    let n = b * PER + i;
                    format!(r#"{{"stream":"s","ts":{n},"visitor":"v{n}","room":"r{n}"}}"#)
                })
                .collect();
            c.send(&format!(
                r#"{{"op":"ingest","events":[{}]}}"#,
                events.join(",")
            ));
        }
        for b in 1..=BATCHES {
            let v = c.recv();
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(true),
                "batch {b}: {v}"
            );
            assert_eq!(
                v.get("count").and_then(Json::as_u64),
                Some(PER),
                "batch {b}: {v}"
            );
            assert_eq!(v.get("seq").and_then(Json::as_u64), Some(b * PER));
        }
        // Kill the instant the last ack is read — no stats round-trip.
        daemon.kill9();

        let daemon = Daemon::spawn(&dir, &["--fsync", "always"]);
        let mut c = daemon.connect();
        assert_eq!(
            occupied_rooms(&mut c),
            (BATCHES * PER) as usize,
            "every acked event survives kill -9"
        );
        let stats = c.call(r#"{"cmd":"stats"}"#);
        assert!(
            counter(&stats, "recovered_ops") > 0,
            "boot replayed the WAL: {stats}"
        );
        assert_eq!(counter(&stats, "wal_discarded_bytes"), 0);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Durable acks + a lateness bound: an event still inside the
    /// reorder buffer has produced no WAL ops, so its ack must be
    /// withheld until the watermark passes it. Events 10s apart with a
    /// 5s bound mean event `i`'s arrival covers event `i-1` but never
    /// `i` itself — so exactly N−1 acks are readable, and a `kill -9`
    /// at that point loses only the never-acked buffered event.
    #[test]
    fn kill9_with_lateness_loses_no_acked_events() {
        let dir = tmp_dir("lateness");
        const N: u64 = 10;

        // `--shards 1`: each event here is a distinct visitor, so under
        // sharding they would land on different shards whose watermarks
        // advance independently — the "exactly N−1 acks" arithmetic
        // below is a single-watermark property (the sharded variant is
        // `kill9_sharded_with_lateness_loses_no_acked_events`).
        let daemon = Daemon::spawn(
            &dir,
            &[
                "--shards",
                "1",
                "--fsync",
                "always",
                "--max-lateness-ms",
                "5000",
            ],
        );
        let mut c = daemon.connect();
        for i in 1..=N {
            c.send(&format!(
                r#"{{"stream":"s","ts":{},"visitor":"v{i}","room":"r{i}"}}"#,
                i * 10_000
            ));
        }
        for i in 1..N {
            let v = c.recv();
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(true),
                "ack {i}: {v}"
            );
        }
        // The Nth ack is (correctly) still held; kill without it.
        daemon.kill9();

        let daemon = Daemon::spawn(
            &dir,
            &[
                "--shards",
                "1",
                "--fsync",
                "always",
                "--max-lateness-ms",
                "5000",
            ],
        );
        let mut c = daemon.connect();
        assert_eq!(
            occupied_rooms(&mut c),
            N as usize - 1,
            "every acked event survives; only the unacked buffered one may be lost"
        );
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The binary plane under `--fsync always`: acks are held until
    /// the covering WAL fsync, so the moment the client has read a
    /// batch's `Ack` frame, `kill -9` cannot lose those events — the
    /// same durability contract as JSONL, through the reactor path.
    #[test]
    fn kill9_after_binary_acks_loses_nothing() {
        use fenestra::prelude::{Event, Value};
        use fenestra::wire::binary::{self, Frame};
        use std::io::Write as _;

        let dir = tmp_dir("binary");
        const BATCHES: u64 = 10;
        const PER: u64 = 25;

        let daemon = Daemon::spawn(&dir, &["--fsync", "always"]);
        let mut b = TcpStream::connect(&daemon.addr).expect("connect binary");
        b.set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        b.write_all(&binary::MAGIC).unwrap();
        // Pipeline all batch frames so the shards can group-commit
        // across them, then read the (deferred) acks.
        for batch in 0..BATCHES {
            let events: Vec<Event> = (1..=PER)
                .map(|i| {
                    let n = batch * PER + i;
                    Event::from_pairs(
                        "s",
                        n,
                        [
                            ("visitor", Value::str(&format!("v{n}"))),
                            ("room", Value::str(&format!("r{n}"))),
                        ],
                    )
                })
                .collect();
            b.write_all(&binary::encode_batch("s", &events).unwrap())
                .unwrap();
        }
        for batch in 1..=BATCHES {
            let f = binary::read_frame(&mut b, binary::DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap_or_else(|| panic!("EOF before ack {batch}"));
            assert_eq!(
                f,
                Frame::Ack {
                    seq: batch * PER,
                    count: PER
                },
                "acks release in admission order"
            );
        }
        // Kill the instant the last ack is read — reading the ack *is*
        // the durability barrier.
        daemon.kill9();

        let daemon = Daemon::spawn(&dir, &["--fsync", "always"]);
        let mut c = daemon.connect();
        assert_eq!(
            occupied_rooms(&mut c),
            (BATCHES * PER) as usize,
            "every binary-acked event survives kill -9"
        );
        let stats = c.call(r#"{"cmd":"stats"}"#);
        assert!(
            counter(&stats, "recovered_ops") > 0,
            "boot replayed the WAL: {stats}"
        );
        assert_eq!(counter(&stats, "wal_discarded_bytes"), 0);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Under `--fsync on-snapshot`, a kill -9 may lose recent events
    /// but recovery still yields a consistent prefix of acked state.
    #[test]
    fn kill9_with_lazy_fsync_recovers_a_consistent_prefix() {
        let dir = tmp_dir("lazy");
        const N: u64 = 30;

        // `--shards 1`: the "recovered state is a prefix" assertion
        // below relies on one WAL — under sharding each shard syncs
        // independently, so a lazy-fsync crash can keep r7 but lose r5.
        let daemon = Daemon::spawn(&dir, &["--shards", "1", "--fsync", "on-snapshot"]);
        let mut c = daemon.connect();
        let stats = ingest_acked(&mut c, N);
        // Lazy policy: far fewer fsyncs than batches.
        let fsyncs = counter(&stats, "fsyncs");
        assert!(fsyncs < N, "on-snapshot must not fsync per batch");
        daemon.kill9();

        let daemon = Daemon::spawn(&dir, &["--shards", "1", "--fsync", "on-snapshot"]);
        let mut c = daemon.connect();
        let survived = occupied_rooms(&mut c);
        assert!(survived <= N as usize, "never more state than was ingested");
        // Whatever survived is a prefix: room r{i} occupied implies
        // every earlier event also survived.
        let v = c.call(r#"{"cmd":"query","q":"select ?v ?r where { ?v room ?r }"}"#);
        let rooms: Vec<&str> = v
            .get("rows")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(|r| r.get("r").and_then(Json::as_str))
            .collect();
        for i in 1..=survived {
            assert!(
                rooms.contains(&format!("r{i}").as_str()),
                "gap at r{i}: recovered state is not a prefix ({rooms:?})"
            );
        }
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sharded durable acks + a lateness bound: 4 fixed visitors route
    /// to (up to) 4 shards, each shard holding its parts' acks until
    /// its own watermark passes them. Sending one event per visitor per
    /// round (10s steps, 5s bound) means round `r+1` covers round `r`
    /// on every shard: exactly the final round's acks stay held, in
    /// strict per-connection FIFO order, and `kill -9` at that point
    /// loses only the never-acked buffered round.
    #[test]
    fn kill9_sharded_with_lateness_loses_no_acked_events() {
        let dir = tmp_dir("sharded-lateness");
        const VISITORS: u64 = 4;
        const ROUNDS: u64 = 8;
        let flags = &[
            "--shards",
            "4",
            "--fsync",
            "always",
            "--max-lateness-ms",
            "5000",
        ];

        let daemon = Daemon::spawn(&dir, flags);
        let mut c = daemon.connect();
        for r in 1..=ROUNDS {
            for v in 1..=VISITORS {
                c.send(&format!(
                    r#"{{"stream":"s","ts":{},"visitor":"w{v}","room":"r{r}"}}"#,
                    r * 10_000
                ));
            }
        }
        // Rounds 1..ROUNDS−1 are covered (round r+1 advanced every
        // shard's watermark past round r); the final round sits in the
        // reorder buffers, its acks correctly held. Per-connection FIFO:
        // the released acks carry strictly sequential seq numbers.
        for i in 1..=VISITORS * (ROUNDS - 1) {
            let v = c.recv();
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(true),
                "ack {i}: {v}"
            );
            assert_eq!(
                v.get("seq").and_then(Json::as_u64),
                Some(i),
                "acks must release in admission order: {v}"
            );
        }
        daemon.kill9();

        // Restart with the same shard count: every acked round is
        // there, the buffered final round is gone.
        let daemon = Daemon::spawn(&dir, flags);
        let mut c = daemon.connect();
        let v = c.call(r#"{"cmd":"query","q":"select ?v ?r where { ?v room ?r }"}"#);
        let rows = v.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), VISITORS as usize, "{v}");
        for row in rows {
            assert_eq!(
                row.get("r").and_then(Json::as_str),
                Some(format!("r{}", ROUNDS - 1).as_str()),
                "each visitor's last acked move survives: {v}"
            );
        }
        // Every acked round survives in history, per visitor.
        for w in 1..=VISITORS {
            let v = c.call(&format!(r#"{{"cmd":"query","q":"history w{w} room"}}"#));
            let spans = v
                .get("history")
                .and_then(Json::as_array)
                .unwrap_or_else(|| {
                    panic!("no history for w{w}: {v}");
                });
            assert_eq!(spans.len(), (ROUNDS - 1) as usize, "w{w}: {v}");
        }
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ----- sharded/unsharded equivalence (property-based) ------------------------

mod shard_equivalence {
    use super::*;
    use fenestra::core::shard::{merge_rows, partial_select};
    use fenestra::query::{parse_query, ParsedQuery, QueryOptions};
    use fenestra::temporal::wal_file::{recover_shards, shard_segment_path, WalWriter};
    use fenestra::temporal::FsyncPolicy;
    use proptest::prelude::*;

    const SHARDS: u32 = 4;
    const LATENESS_MS: u64 = 5_000;

    fn rules() -> &'static str {
        "rule mv:\n on s\n replace $(visitor).room = room\n"
    }

    fn single() -> Engine {
        let mut e = Engine::new(EngineConfig {
            max_lateness: Duration::millis(LATENESS_MS),
            ..EngineConfig::default()
        });
        e.add_rules_text(rules()).unwrap();
        e
    }

    fn sharded() -> ShardedEngine {
        let mut e = ShardedEngine::new(
            EngineConfig {
                max_lateness: Duration::millis(LATENESS_MS),
                ..EngineConfig::default()
            },
            SHARDS,
        );
        e.add_rules_text(rules()).unwrap();
        e
    }

    /// Random workload: visitors moving between rooms, timestamps
    /// increasing with bounded backwards jitter — always within the
    /// lateness bound, so neither engine drops anything and the final
    /// states must agree exactly.
    fn workload() -> impl Strategy<Value = Vec<Event>> {
        prop::collection::vec((0u64..6, 0u64..4, 0u64..2_000, 0u64..4_000), 1..80).prop_map(
            |moves| {
                let mut t = 10_000u64;
                moves
                    .into_iter()
                    .map(|(v, r, gap, jitter)| {
                        t += gap;
                        // Jitter stays below the lateness bound.
                        let ts = t.saturating_sub(jitter.min(LATENESS_MS - 1));
                        Event::from_pairs(
                            "s",
                            ts,
                            [
                                ("visitor", Value::str(&format!("v{v}"))),
                                ("room", Value::str(&format!("r{r}"))),
                            ],
                        )
                    })
                    .collect()
            },
        )
    }

    /// Rows with entity ids resolved to names (ids are shard-local, so
    /// equivalence is over resolved rows), re-sorted for comparison.
    fn resolved_rows(engine: &Engine, text: &str) -> Vec<Vec<(String, String)>> {
        let QueryResult::Rows(rows) = engine.query(text).unwrap() else {
            panic!("select expected");
        };
        let store = engine.store();
        let mut out: Vec<Vec<(String, String)>> = rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(k, v)| {
                        // Resolve shard-local entity ids to names so
                        // both sides format identically.
                        let v = match v {
                            Value::Id(e) => store.entity_name(e).map(Value::Str).unwrap_or(v),
                            other => other,
                        };
                        (k.as_str().to_string(), format!("{v}"))
                    })
                    .collect()
            })
            .collect();
        out.sort();
        out
    }

    fn sharded_rows(engine: &ShardedEngine, text: &str) -> Vec<Vec<(String, String)>> {
        let QueryResult::Rows(rows) = engine.query(text).unwrap() else {
            panic!("select expected");
        };
        let mut out: Vec<Vec<(String, String)>> = rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(k, v)| (k.as_str().to_string(), format!("{v}")))
                    .collect()
            })
            .collect();
        out.sort();
        out
    }

    /// `check_metrics` only holds for live engines — a recovered
    /// engine's state matches but its event counters start from zero.
    fn assert_equivalent(reference: &Engine, test: &ShardedEngine, check_metrics: bool) {
        // Full current state.
        let all = "select ?v ?r where { ?v room ?r }";
        prop_assert_is_eq(resolved_rows(reference, all), sharded_rows(test, all));
        // Global count (merged across shards, not per shard).
        let count = "select count ?v where { ?v room ?r }";
        prop_assert_is_eq(resolved_rows(reference, count), sharded_rows(test, count));
        // Per-entity history, wherever the entity landed.
        for v in 0..6 {
            let name = format!("v{v}");
            let text = format!("history {name} room");
            let a = reference.query(&text).ok();
            let b = test.query(&text).ok();
            match (a, b) {
                (None, None) => {}
                (Some(QueryResult::History(ha)), Some(QueryResult::History(hb))) => {
                    prop_assert_is_eq(ha, hb);
                }
                (a, b) => panic!("history divergence for {name}: {a:?} vs {b:?}"),
            }
        }
        // Aggregate metrics agree (no drops on either side).
        let ma = reference.metrics();
        prop_assert_is_eq(ma.late_dropped, 0);
        if check_metrics {
            let mb = test.metrics();
            prop_assert_is_eq((ma.events, ma.transitions), (mb.events, mb.transitions));
        }
    }

    /// `prop_assert_eq!` only works inside `proptest!`; these helpers
    /// run inside plain fns called from it, so panic (which proptest
    /// converts into a failing, minimizable case).
    fn prop_assert_is_eq<T: PartialEq + std::fmt::Debug>(a: T, b: T) {
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A 4-shard engine is observationally equivalent to a single
        /// engine on any bounded-disorder keyed workload: same rows,
        /// same counts, same per-entity histories, same metrics.
        #[test]
        fn sharded_engine_matches_single_engine(events in workload()) {
            let mut reference = single();
            let mut test = sharded();
            for ev in &events {
                reference.push(ev.clone());
                test.push(ev.clone());
            }
            reference.finish();
            test.finish();
            assert_equivalent(&reference, &test, true);
        }

        /// Crash equivalence: write each shard's journal to its own WAL
        /// segment, drop everything in-memory (the `kill -9`), recover
        /// all shards in parallel via `recover_shards`, and the rebuilt
        /// sharded engine still matches the single reference engine.
        #[test]
        fn sharded_wal_replay_matches_single_engine(events in workload(), case in 0u32..1_000_000) {
            let mut reference = single();
            let mut test = sharded();
            for ev in &events {
                reference.push(ev.clone());
                test.push(ev.clone());
            }
            reference.finish();
            test.finish();

            let dir = std::env::temp_dir().join(format!(
                "fenestra-shard-replay-{}-{case}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let base = dir.join("log");
            for i in 0..SHARDS {
                let ops = test.shard_mut(i).take_journal();
                let mut w =
                    WalWriter::create(&shard_segment_path(&base, i, 0), FsyncPolicy::Always)
                        .unwrap();
                w.append(&ops).unwrap();
                w.sync().unwrap();
            }
            drop(test); // the crash: all in-memory state gone

            let mut recovered = sharded();
            let recs = recover_shards(None, Some(&base), SHARDS).unwrap();
            for (i, rec) in recs.into_iter().enumerate() {
                recovered.shard_mut(i as u32).restore_state(rec.store).unwrap();
            }
            assert_equivalent(&reference, &recovered, false);
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// The fan-out building blocks themselves: running the partial
        /// select on each shard store and merging must equal running the
        /// full query on a single engine — including `count` and `limit`
        /// applied globally after the merge.
        #[test]
        fn partial_select_merge_matches_full_query(events in workload()) {
            let mut reference = single();
            let mut test = sharded();
            for ev in &events {
                reference.push(ev.clone());
                test.push(ev.clone());
            }
            reference.finish();
            test.finish();

            let text = "select count ?v where { ?v room ?r }";
            let ParsedQuery::Select(q) = parse_query(text).unwrap() else {
                panic!("select expected");
            };
            let parts: Vec<_> = (0..SHARDS)
                .map(|i| {
                    partial_select(&test.shard(i).store(), &q, QueryOptions::default()).unwrap()
                })
                .collect();
            let merged = merge_rows(&q, parts);
            let QueryResult::Rows(expect) = reference.query(text).unwrap() else {
                panic!("select expected");
            };
            prop_assert_eq!(merged, expect);
        }
    }
}
