//! Failure-injection integration tests: out-of-order delivery,
//! duplicates, late data, malformed inputs.

use fenestra::prelude::*;
use fenestra::workloads::ooo;
use fenestra::workloads::{BuildingConfig, BuildingWorkload};

fn move_rule_engine(lateness_ms: u64) -> Engine {
    let mut engine = Engine::new(EngineConfig {
        max_lateness: Duration::millis(lateness_ms),
        ..EngineConfig::default()
    });
    engine.declare_attr("room", AttrSchema::one());
    engine
        .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
        .unwrap();
    engine
}

/// Bounded out-of-order delivery with a sufficient lateness bound is
/// fully reordered: the final state equals in-order processing.
#[test]
fn out_of_order_delivery_is_transparent_within_bound() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 10,
        rooms: 6,
        mean_dwell_ms: 10_000,
        duration_ms: 300_000,
        seed: 9,
    });
    let shuffled = ooo::perturb(&workload.events, 5_000, 21);
    assert!(ooo::max_disorder(&shuffled) > 0, "perturbation effective");

    let mut ordered = move_rule_engine(0);
    ordered.run(workload.events.iter().cloned());
    ordered.finish();

    let mut disordered = move_rule_engine(5_000);
    disordered.run(shuffled);
    disordered.finish();
    assert_eq!(disordered.metrics().late_dropped, 0);

    let a = ordered.store();
    let b = disordered.store();
    for v in 0..10 {
        let name = format!("v{v}");
        let ea = a.lookup_entity(name.as_str()).unwrap();
        let eb = b.lookup_entity(name.as_str()).unwrap();
        assert_eq!(a.history(ea, "room"), b.history(eb, "room"), "{name}");
    }
}

/// Beyond the lateness bound, events are dropped and counted — never
/// applied retroactively.
#[test]
fn late_events_beyond_bound_are_dropped_not_misapplied() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 5,
        rooms: 4,
        mean_dwell_ms: 5_000,
        duration_ms: 100_000,
        seed: 2,
    });
    let shuffled = ooo::perturb(&workload.events, 20_000, 4);
    let mut engine = move_rule_engine(1_000); // bound far below disorder
    engine.run(shuffled);
    engine.finish();
    let m = engine.metrics();
    assert!(m.late_dropped > 0, "some events must be late");
    assert_eq!(m.events + m.late_dropped, workload.events.len() as u64);
    // Remaining history is still temporally sane: intervals per
    // visitor never overlap.
    let store = engine.store();
    for v in 0..5 {
        let name = format!("v{v}");
        let Some(e) = store.lookup_entity(name.as_str()) else {
            continue;
        };
        let h = store.history(e, "room");
        for w in h.windows(2) {
            assert!(
                w[0].0.end.is_some_and(|end| end <= w[1].0.start),
                "overlapping intervals for {name}"
            );
        }
    }
}

/// At-least-once delivery: duplicated events do not duplicate state
/// (replace is idempotent on identical values).
#[test]
fn duplicate_events_are_idempotent_on_state() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 6,
        rooms: 5,
        mean_dwell_ms: 8_000,
        duration_ms: 150_000,
        seed: 13,
    });
    let dup = ooo::with_duplicates(&workload.events, 0.3, 8);
    assert!(dup.len() > workload.events.len());

    let mut clean = move_rule_engine(0);
    clean.run(workload.events.iter().cloned());
    clean.finish();
    let mut dirty = move_rule_engine(0);
    dirty.run(dup);
    dirty.finish();

    let a = clean.store();
    let b = dirty.store();
    assert_eq!(a.stored_fact_count(), b.stored_fact_count());
    for v in 0..6 {
        let name = format!("v{v}");
        let ea = a.lookup_entity(name.as_str()).unwrap();
        let eb = b.lookup_entity(name.as_str()).unwrap();
        assert_eq!(a.history(ea, "room"), b.history(eb, "room"));
    }
    // The duplicates fired rules but changed nothing.
    assert!(dirty.metrics().rule_fired > clean.metrics().rule_fired);
    assert_eq!(dirty.metrics().transitions, clean.metrics().transitions);
}

/// Malformed rule/query texts produce parse errors with positions, and
/// never panic.
#[test]
fn malformed_inputs_error_cleanly() {
    let mut engine = Engine::with_defaults();
    for bad_rule in [
        "rule:",
        "rule x on s assert $(u).a = 1",
        "rule x: on s assert $(u).a =",
        "rule x: on pattern within 5s assert $(u).a = 1",
        "완전히 잘못된 입력",
    ] {
        assert!(engine.add_rules_text(bad_rule).is_err(), "{bad_rule}");
    }
    for bad_query in [
        "select",
        "select ?x where { }",
        "history",
        "select ?x where { ?x a \"b\" } asof -5",
    ] {
        assert!(engine.query(bad_query).is_err(), "{bad_query}");
    }
    // Engine still usable afterwards.
    engine
        .add_rules_text("rule ok:\n on s\n replace $(u).a = 1")
        .unwrap();
    engine.push(Event::from_pairs("s", 1u64, [("u", "x")]));
    engine.finish();
    assert_eq!(engine.metrics().transitions, 1);
}

/// Rule actions that hit store errors surface in metrics but do not
/// poison the engine.
#[test]
fn store_level_errors_are_contained() {
    let mut engine = Engine::with_defaults();
    engine.declare_attr("slot", AttrSchema::one());
    // Bad rule: asserts into a cardinality-one attribute without
    // replace; second event conflicts.
    engine
        .add_rules_text("rule bad:\n on s\n assert $(u).slot = v")
        .unwrap();
    engine.push(Event::from_pairs("s", 1u64, [("u", "x"), ("v", "a")]));
    engine.push(Event::from_pairs("s", 2u64, [("u", "x"), ("v", "b")]));
    engine.finish();
    let m = engine.metrics();
    assert_eq!(m.rule_errors, 1, "cardinality conflict reported");
    assert_eq!(m.transitions, 1, "first assert applied");
    let store = engine.store();
    let e = store.lookup_entity("x").unwrap();
    assert_eq!(store.current().value(e, "slot"), Some(Value::str("a")));
}
