//! End-to-end exercise of `fenestrad`'s wire protocol: concurrent
//! ingest over two connections, live + historical queries mid-stream,
//! watch pushes, stats, graceful shutdown, and snapshot replay.

use fenestra::base::time::Duration;
use fenestra::core::EngineConfig;
use fenestra::server::{Server, ServerConfig};
use fenestra::temporal::AttrSchema;
use serde_json::Value as Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One protocol client: line-oriented send/receive with a read
/// timeout so a protocol bug fails the test instead of hanging it.
struct Client {
    out: TcpStream,
    lines: std::io::Lines<BufReader<TcpStream>>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let out = TcpStream::connect(addr).expect("connect");
        out.set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        let lines = BufReader::new(out.try_clone().unwrap()).lines();
        Client { out, lines }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.out, "{line}").expect("send");
    }

    fn recv(&mut self) -> Json {
        let line = self
            .lines
            .next()
            .expect("connection closed early")
            .expect("read");
        serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad reply `{line}`: {e}"))
    }

    /// Round-trip one request.
    fn call(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }

    /// Read replies until `pred` matches, returning the skipped lines
    /// and the match (acks and watch pushes interleave on one socket).
    fn recv_until(&mut self, pred: impl Fn(&Json) -> bool) -> (Vec<Json>, Json) {
        let mut skipped = Vec::new();
        for _ in 0..1000 {
            let v = self.recv();
            if pred(&v) {
                return (skipped, v);
            }
            skipped.push(v);
        }
        panic!("no matching reply in 1000 lines; skipped: {skipped:?}");
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn event(ts: u64, visitor: &str, room: &str) -> String {
    format!(r#"{{"stream":"sensors","ts":{ts},"visitor":"{visitor}","room":"{room}"}}"#)
}

#[test]
fn fenestrad_end_to_end() {
    let dir = std::env::temp_dir().join(format!("fenestrad-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("state.json");

    // A one-hour lateness bound keeps the two connections' interleaved
    // timestamps safe; "drain" events far in the future advance the
    // watermark deterministically when the test needs visibility.
    let config = ServerConfig::new("127.0.0.1:0")
        .engine(EngineConfig {
            max_lateness: Duration::hours(1),
            ..EngineConfig::default()
        })
        .snapshot_path(&snapshot)
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let mut handle = Server::start(config).expect("start server");
    let addr = handle.local_addr();

    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);

    // Register a watch before any data exists: ack, no initial rows.
    let ack = a.call(r#"{"cmd":"watch","name":"lab","q":"select ?v where { ?v room \"lab\" }"}"#);
    assert_eq!(ack.get("watch").and_then(Json::as_str), Some("lab"));

    // Concurrent ingest: 150 events per connection. The `a*` visitors
    // start in the lobby and move to the lab; the `b*` visitors stay
    // in the lobby.
    let send_phase = |client: &mut Client, prefix: &str, lab_after: usize| {
        for i in 0..150usize {
            let room = if i < lab_after { "lobby" } else { "lab" };
            client.send(&event(1000 + i as u64, &format!("{prefix}{}", i % 5), room));
        }
        let mut top_seq = 0;
        for _ in 0..150 {
            let v = client.recv();
            assert!(ok(&v), "ingest rejected: {v}");
            top_seq = v.get("seq").and_then(Json::as_u64).unwrap();
        }
        top_seq
    };
    let b_thread = std::thread::spawn({
        let mut b2 = Client::connect(addr);
        move || {
            send_phase(&mut b2, "b", usize::MAX);
            b2
        }
    });
    let a_seq = send_phase(&mut a, "a", 75);
    let _b2 = b_thread.join().unwrap();
    assert_eq!(a_seq, 150, "per-connection sequence numbers");

    // Advance the watermark past the phase-1 events; the five `a*`
    // visitors enter the watched lab view.
    a.send(&event(4_000_000, "alice", "attic"));
    let mut deltas = Vec::new();
    while deltas.len() < 5 {
        let (skipped, v) = a.recv_until(|v| v.get("watch").is_some() || ok(v));
        assert!(skipped.is_empty(), "unexpected replies: {skipped:?}");
        if v.get("watch").is_some() {
            deltas.push(v);
        }
    }
    for d in &deltas {
        assert_eq!(d.get("sign").and_then(Json::as_i64), Some(1), "{d}");
        let who = d
            .get("row")
            .and_then(|r| r.get("v"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(who.starts_with('a'), "only a* reached the lab: {d}");
    }

    // Live query from the other connection: lab occupancy is visible.
    let v = b.call(r#"{"cmd":"query","q":"select ?v where { ?v room \"lab\" }"}"#);
    assert!(ok(&v), "{v}");
    assert_eq!(v.get("rows").and_then(Json::as_array).unwrap().len(), 5);

    // Historical query mid-stream: at t=1050 everyone was in the lobby.
    let v = b.call(r#"{"cmd":"query","q":"select ?v where { ?v room \"lobby\" } asof 1050"}"#);
    assert_eq!(v.get("rows").and_then(Json::as_array).unwrap().len(), 10);

    // Timeline of one entity over the wire.
    let v = b.call(r#"{"cmd":"query","q":"history a0 room"}"#);
    let spans = v.get("history").and_then(Json::as_array).unwrap();
    assert!(spans.len() >= 2, "lobby then lab: {v}");

    // A later correction pushes a0 out of the watched view (sign −1).
    let v = b.call(&event(4_000_100, "a0", "lobby"));
    assert!(ok(&v));
    let v = b.call(&event(8_000_000, "alice", "attic"));
    assert!(ok(&v));
    let (_skipped, d) = a.recv_until(|v| v.get("watch").is_some());
    assert_eq!(d.get("sign").and_then(Json::as_i64), Some(-1), "{d}");
    assert_eq!(
        d.get("row").and_then(|r| r.get("v")).and_then(Json::as_str),
        Some("a0")
    );

    // Sync: the processing barrier (stats reads atomics and is not
    // one); its reply proves every prior event has been applied.
    let v = b.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");

    // Stats: engine and server counters over the wire.
    let v = b.call(r#"{"cmd":"stats"}"#);
    assert!(ok(&v), "{v}");
    let engine = v.get("engine").unwrap();
    let server = v.get("server").unwrap();
    assert_eq!(engine.get("events").and_then(Json::as_u64), Some(303));
    assert_eq!(server.get("events").and_then(Json::as_u64), Some(303));
    assert_eq!(server.get("connections").and_then(Json::as_u64), Some(3));
    assert_eq!(server.get("watches").and_then(Json::as_u64), Some(1));
    assert_eq!(server.get("queries").and_then(Json::as_u64), Some(3));
    assert!(server.get("bytes_in").and_then(Json::as_u64).unwrap() > 0);
    assert!(server.get("bytes_out").and_then(Json::as_u64).unwrap() > 0);

    // Graceful shutdown over the wire: drains, snapshots, exits.
    let v = b.call(r#"{"cmd":"shutdown"}"#);
    assert!(v.get("bye").is_some(), "{v}");
    handle.join();

    // The snapshot replays into an equivalent store: a0 ended in the
    // lobby, a1..a4 in the lab.
    let store = fenestra::temporal::persist::load(&snapshot).expect("snapshot loads");
    let q = match fenestra::query::parse_query(r#"select ?v where { ?v room "lab" }"#).unwrap() {
        fenestra::query::ParsedQuery::Select(q) => q,
        _ => unreachable!(),
    };
    let rows = fenestra::query::execute(&store, &q).unwrap();
    assert_eq!(rows.len(), 4, "a0 left the lab before shutdown");
    assert!(!store.wal().is_empty(), "snapshot carries the WAL");

    std::fs::remove_dir_all(&dir).ok();
}

/// Many connections ingesting concurrently — a mix of single-event
/// lines and `{"op":"ingest","events":[…]}` batch frames — land every
/// event exactly once, per-connection sequence numbers count events
/// (not frames), and the group-commit counters show up in `stats`.
#[test]
fn concurrent_ingest_mixes_batch_and_single_frames() {
    const THREADS: usize = 4;
    const EVENTS: usize = 120; // per connection; divisible by the batch size
    const BATCH: usize = 12;

    let config = ServerConfig::new("127.0.0.1:0")
        .engine(EngineConfig {
            max_lateness: Duration::hours(1),
            ..EngineConfig::default()
        })
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let mut handle = Server::start(config).expect("start server");
    let addr = handle.local_addr();

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut last_seq = 0;
                if t % 2 == 0 {
                    // Single-event lines, pipelined.
                    for i in 0..EVENTS {
                        c.send(&event(1000 + i as u64, &format!("t{t}v{i}"), "hall"));
                    }
                    for _ in 0..EVENTS {
                        let v = c.recv();
                        assert!(ok(&v), "ingest rejected: {v}");
                        last_seq = v.get("seq").and_then(Json::as_u64).unwrap();
                    }
                } else {
                    // Batch frames, pipelined.
                    for chunk in 0..EVENTS / BATCH {
                        let evs: Vec<String> = (0..BATCH)
                            .map(|j| {
                                let i = chunk * BATCH + j;
                                event(1000 + i as u64, &format!("t{t}v{i}"), "hall")
                            })
                            .collect();
                        c.send(&format!(
                            r#"{{"op":"ingest","events":[{}]}}"#,
                            evs.join(",")
                        ));
                    }
                    for _ in 0..EVENTS / BATCH {
                        let v = c.recv();
                        assert!(ok(&v), "batch rejected: {v}");
                        assert_eq!(
                            v.get("count").and_then(Json::as_u64),
                            Some(BATCH as u64),
                            "{v}"
                        );
                        last_seq = v.get("seq").and_then(Json::as_u64).unwrap();
                    }
                }
                assert_eq!(last_seq, EVENTS as u64, "seq counts events, not frames");
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let total = (THREADS * EVENTS) as u64;
    let mut c = Client::connect(addr);
    // Advance the watermark so everything is visible to queries.
    let v = c.call(&event(4_000_000, "drain", "attic"));
    assert!(ok(&v));
    // `stats` is lock-light and not a barrier; `sync` is — its reply
    // proves every shard has processed everything admitted above.
    let v = c.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");

    let v = c.call(r#"{"cmd":"stats"}"#);
    assert!(ok(&v), "{v}");
    let server = v.get("server").unwrap();
    let engine = v.get("engine").unwrap();
    assert_eq!(
        server.get("events").and_then(Json::as_u64),
        Some(total + 1),
        "every event admitted exactly once: {server}"
    );
    assert_eq!(server.get("late_dropped").and_then(Json::as_u64), Some(0));
    assert_eq!(engine.get("events").and_then(Json::as_u64), Some(total + 1));
    // Batch accounting: every admitted event went through a batch, and
    // at least the client batch frames were applied whole.
    let batches = server.get("ingest_batches").and_then(Json::as_u64).unwrap();
    let batched = server
        .get("ingest_batched_events")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(batched, total + 1, "{server}");
    assert!(batches >= 1 && batches <= batched, "{server}");
    assert!(
        server
            .get("ingest_batch_max")
            .and_then(Json::as_u64)
            .unwrap()
            >= BATCH as u64,
        "a client batch frame is applied whole: {server}"
    );
    assert!(
        server
            .get("ingest_batch_mean")
            .and_then(Json::as_f64)
            .unwrap()
            >= 1.0,
        "{server}"
    );
    for key in ["group_commits", "acks_deferred"] {
        assert!(server.get(key).is_some(), "missing {key}: {server}");
    }

    // Spot-check: batched and single-frame events produced the same
    // kind of state — all distinct visitors are in the hall.
    let v = c.call(r#"{"cmd":"query","q":"select ?v where { ?v room \"hall\" }"}"#);
    assert!(ok(&v), "{v}");
    assert_eq!(
        v.get("rows").and_then(Json::as_array).unwrap().len(),
        THREADS * EVENTS,
        "one row per distinct visitor"
    );

    handle.shutdown();
}

/// Durable-ack mode (WAL + `always` fsync) with a lateness bound: an
/// ack is withheld until the watermark passes its events (a buffered
/// event has produced no WAL ops, so no fsync covers it yet), and the
/// per-connection ack stream stays in admission order — an empty batch
/// frame's ack must not overtake the held ack of an earlier frame.
#[test]
fn durable_acks_release_in_order_once_covered() {
    let dir = std::env::temp_dir().join(format!("fenestrad-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let config = ServerConfig::new("127.0.0.1:0")
        .wal_path(dir.join("log")) // fsync defaults to `always`
        .engine(EngineConfig {
            max_lateness: Duration::millis(5_000),
            ..EngineConfig::default()
        })
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let mut handle = Server::start(config).expect("start server");
    let mut c = Client::connect(handle.local_addr());

    // Frame 1 buffers inside the lateness bound: its ack is held.
    c.send(&event(10_000, "a", "lobby"));
    // Frame 2 is an empty batch: trivially durable, but its ack must
    // still wait behind frame 1's.
    c.send(r#"{"op":"ingest","events":[]}"#);
    // Frame 3 advances the watermark past frame 1 (to 15_000),
    // releasing acks 1 then 2; frame 3 itself is now the buffered one.
    c.send(&event(20_000, "b", "hall"));

    let v1 = c.recv();
    assert_eq!(v1.get("seq").and_then(Json::as_u64), Some(1), "{v1}");
    assert!(
        v1.get("count").is_none(),
        "event ack first, empty-frame ack must not overtake it: {v1}"
    );
    let v2 = c.recv();
    assert_eq!(v2.get("count").and_then(Json::as_u64), Some(0), "{v2}");
    assert_eq!(v2.get("seq").and_then(Json::as_u64), Some(1), "{v2}");

    // Shutdown drains the reorder buffer and checkpoints, releasing
    // frame 3's held ack before the bye — still in order.
    c.send(r#"{"cmd":"shutdown"}"#);
    let v3 = c.recv();
    assert_eq!(v3.get("seq").and_then(Json::as_u64), Some(2), "{v3}");
    let v4 = c.recv();
    assert!(v4.get("bye").is_some(), "{v4}");
    handle.join();
    assert_eq!(
        handle
            .metrics()
            .acks_deferred
            .load(std::sync::atomic::Ordering::Relaxed),
        3,
        "all three admitted frames deferred their acks"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Held acks release in admission order *per connection*, not
/// globally: the stream-head frame's ack can stay held for a long time
/// (nothing has passed the watermark beyond it), and a frame another
/// connection admits behind it — here one dropped as late, which left
/// nothing behind to persist — must still ack promptly instead of
/// queueing behind the head forever.
#[test]
fn held_ack_on_one_connection_does_not_starve_others() {
    let dir = std::env::temp_dir().join(format!("fenestrad-starve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let config = ServerConfig::new("127.0.0.1:0")
        .wal_path(dir.join("log")) // fsync defaults to `always`
        .engine(EngineConfig {
            max_lateness: Duration::millis(5_000),
            ..EngineConfig::default()
        })
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let mut handle = Server::start(config).expect("start server");
    let mut a = Client::connect(handle.local_addr());
    let mut b = Client::connect(handle.local_addr());

    // Conn A pushes the stream head: the event buffers at 10_000 with
    // the watermark at 5_000, so its ack is held. The sync round-trip
    // (sync replies are never held) proves the engine has processed
    // the event before conn B sends anything.
    a.send(&event(10_000, "a", "lobby"));
    let s = a.call(r#"{"cmd":"sync"}"#);
    assert_eq!(
        s.get("synced").and_then(Json::as_bool),
        Some(true),
        "expected the sync reply (the event ack must still be held): {s}"
    );

    // Conn B's event is beyond the lateness bound: dropped as late, no
    // journal ops, nothing left to make durable. Its ack must arrive
    // even though conn A's earlier ack is still held.
    b.send(&event(100, "b", "hall"));
    let vb = b.recv();
    assert!(ok(&vb), "{vb}");
    assert_eq!(vb.get("seq").and_then(Json::as_u64), Some(1), "{vb}");

    // Shutdown drains the buffer and checkpoints, releasing conn A's
    // held ack; the bye still follows it into conn B's stream.
    b.send(r#"{"cmd":"shutdown"}"#);
    let bye = b.recv();
    assert!(bye.get("bye").is_some(), "{bye}");
    let va = a.recv();
    assert_eq!(va.get("seq").and_then(Json::as_u64), Some(1), "{va}");
    handle.join();

    let m = handle.metrics();
    let load = |a: &std::sync::atomic::AtomicU64| a.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(load(&m.acks_deferred), 2, "both admitted frames deferred");
    assert_eq!(load(&m.late_dropped), 1, "conn B's event was late");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scrape the optional `/metrics` listener during a durable-ack run:
/// the reply is Prometheus 0.0.4 text exposition, every sample line
/// parses, per-shard stage histograms are present, and the counters
/// obey cross-family invariants (`acks_released <= acks_deferred <=
/// events admitted` once a `sync` has settled the sole connection).
#[test]
fn metrics_listener_serves_parseable_prometheus_text() {
    let dir = std::env::temp_dir().join(format!("fenestrad-prom-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let config = ServerConfig::new("127.0.0.1:0")
        .metrics_addr("127.0.0.1:0")
        .shards(2)
        .wal_path(dir.join("log")) // fsync defaults to `always`
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let mut handle = Server::start(config).expect("start server");
    let maddr = handle.metrics_addr().expect("metrics listener bound");
    let mut c = Client::connect(handle.local_addr());

    // 16 durable single-event frames across many entity keys, so both
    // shards see traffic; all acks release (lateness 0), then sync
    // settles the deferred/released counters.
    const N: u64 = 16;
    for i in 0..N {
        let v = c.call(&event(1000 + i, &format!("v{i}"), "hall"));
        assert!(ok(&v), "{v}");
    }
    let v = c.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");

    // Plain HTTP GET against the second listener.
    let mut m = TcpStream::connect(maddr).expect("connect metrics");
    m.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    write!(m, "GET /metrics HTTP/1.1\r\nHost: fenestra\r\n\r\n").unwrap();
    let mut response = String::new();
    use std::io::Read;
    m.read_to_string(&mut response).expect("read response");

    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus content type: {head}"
    );

    // Every sample line parses as `name{labels} value` with an
    // unsigned integer value.
    let mut samples = std::collections::BTreeMap::new();
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line {line}"));
        let value: u64 = value
            .parse()
            .unwrap_or_else(|e| panic!("bad value in `{line}`: {e}"));
        samples.insert(series.to_string(), value);
    }
    let get = |series: &str| {
        *samples
            .get(series)
            .unwrap_or_else(|| panic!("missing series {series} in:\n{body}"))
    };

    // Per-shard stage histograms exist for both shards, and each
    // family's +Inf bucket equals its _count.
    for shard in 0..2 {
        for stage in ["queue_wait_us", "wal_append_us", "fsync_us", "ack_hold_us"] {
            let inf = get(&format!(
                "fenestra_stage_{stage}_bucket{{shard=\"{shard}\",le=\"+Inf\"}}"
            ));
            let count = get(&format!(
                "fenestra_stage_{stage}_count{{shard=\"{shard}\"}}"
            ));
            assert_eq!(
                inf, count,
                "+Inf bucket is the total: {stage} shard {shard}"
            );
            assert!(count > 0, "shard {shard} saw {stage} samples");
        }
    }

    // Cross-family invariants after the sync settled the connection.
    let admitted = get("fenestra_server_events_total");
    let deferred = get("fenestra_server_acks_deferred_total");
    let released = get("fenestra_server_acks_released_total");
    assert_eq!(admitted, N);
    assert!(
        released <= deferred,
        "released {released} <= deferred {deferred}"
    );
    assert!(
        deferred <= admitted + 1,
        "one deferral per frame: {deferred}"
    );
    assert_eq!(released, deferred, "every held ack released (lateness 0)");
    assert_eq!(
        get("fenestra_engine_events_total{shard=\"0\"}")
            + get("fenestra_engine_events_total{shard=\"1\"}"),
        N,
        "shard engine counters sum to the admitted total"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the (since fixed) `ingest_smoke --conns 4/8`
/// late-drop anomaly: connections that claim timestamps from a shared
/// counter at *send* time but deliver independently can fall behind
/// the watermark that the fastest connection drives forward; once
/// claim-to-apply skew exceeds the lateness bound, the slow
/// connection's whole backlog is dropped as late. The lateness-margin
/// histogram attributes the drops and measures how far past the bound
/// they were. The bench generator now avoids the artifact (interleaved
/// write-time timestamp leases plus a sync-proven send window pacing
/// every sender against the straggling connection); this test keeps
/// pinning the server-side mechanism it exposed — late events are
/// acked, then dropped, with their margins attributed per stage and
/// per shard.
#[test]
fn skewed_connection_drops_attributed_with_lateness_margins() {
    let config = ServerConfig::new("127.0.0.1:0")
        .engine(EngineConfig {
            max_lateness: Duration::millis(2_000), // the smoke test's bound
            ..EngineConfig::default()
        })
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let mut handle = Server::start(config).expect("start server");
    let mut fast = Client::connect(handle.local_addr());
    let mut slow = Client::connect(handle.local_addr());

    // The "fast" connection races ahead: its latest claim (ts 10_000)
    // drives the watermark to 8_000. The sync proves it was applied.
    let v = fast.call(&event(10_000, "f", "hall"));
    assert!(ok(&v), "{v}");
    let v = fast.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");

    // The "slow" connection now delivers timestamps it claimed long
    // ago — 7_000 and 5_000 ms behind the watermark, far beyond the
    // 2_000 ms bound. Both are admitted (acked) but dropped as late.
    for ts in [1_000u64, 3_000] {
        let v = slow.call(&event(ts, "s", "hall"));
        assert!(ok(&v), "late events are acked, then dropped: {v}");
    }
    let v = slow.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");

    let v = slow.call(r#"{"cmd":"stats"}"#);
    assert!(ok(&v), "{v}");
    let server = v.get("server").unwrap();
    assert_eq!(
        server.get("late_dropped").and_then(Json::as_u64),
        Some(2),
        "the slow connection's backlog was dropped: {server}"
    );
    // The margin histogram counts exactly the drops and records how
    // far behind the watermark each was (7_000 and 5_000 ms).
    let margins = v
        .get("stages")
        .and_then(|s| s.get("late_margin_ms"))
        .unwrap_or_else(|| panic!("no late_margin_ms in {v}"));
    assert_eq!(
        margins.get("count").and_then(Json::as_u64),
        Some(2),
        "{margins}"
    );
    assert_eq!(
        margins.get("max").and_then(Json::as_u64),
        Some(7_000),
        "worst margin is the oldest claim: {margins}"
    );
    assert!(
        margins.get("p50").and_then(Json::as_u64).unwrap() >= 5_000,
        "median margin far beyond the 2_000 ms bound: {margins}"
    );

    // Per-shard attribution: the single shard owns both drops.
    let shards = v.get("shards").and_then(Json::as_array).unwrap();
    assert_eq!(
        shards[0]
            .get("engine")
            .and_then(|e| e.get("late_dropped"))
            .and_then(Json::as_u64),
        Some(2),
        "{v}"
    );

    handle.shutdown();
}

/// The binary plane shares the JSONL listener: a connection whose
/// first four bytes are the `FNB1` magic speaks length-prefixed
/// CRC-framed record batches, everything else falls through to JSONL
/// untouched. Both planes' events land in one store, binary acks
/// carry event-counting sequence numbers exactly like JSONL `seq`,
/// and the binary `Sync` barrier round-trips.
#[test]
fn binary_and_jsonl_planes_share_one_listener() {
    use fenestra::prelude::{Event, Value};
    use fenestra::wire::binary::{self, Frame};

    let config = ServerConfig::new("127.0.0.1:0")
        .engine(EngineConfig {
            max_lateness: Duration::hours(1),
            ..EngineConfig::default()
        })
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let mut handle = Server::start(config).expect("start server");
    let addr = handle.local_addr();

    // A JSONL client, deliberately concurrent with the binary one.
    let mut j = Client::connect(addr);

    // The binary client: magic first, then pipelined batches.
    let mut b = TcpStream::connect(addr).expect("connect binary");
    b.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    b.write_all(&binary::MAGIC).unwrap();
    let mk = |lo: u64, n: usize| -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::from_pairs(
                    "sensors",
                    lo + i as u64,
                    [
                        ("visitor", Value::str(&format!("bin{i}"))),
                        ("room", Value::str("vault")),
                    ],
                )
            })
            .collect()
    };
    b.write_all(&binary::encode_batch("sensors", &mk(1_000, 8)).unwrap())
        .unwrap();
    b.write_all(&binary::encode_batch("sensors", &mk(2_000, 8)).unwrap())
        .unwrap();

    // JSONL ingest interleaves on the same listener, unaffected.
    for i in 0..8u64 {
        let v = j.call(&event(1_500 + i, &format!("jso{i}"), "vault"));
        assert!(ok(&v), "{v}");
    }

    // Binary acks count events (not frames), like the JSONL `seq`.
    let ack = binary::read_frame(&mut b, binary::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("first ack");
    assert_eq!(ack, Frame::Ack { seq: 8, count: 8 });
    let ack = binary::read_frame(&mut b, binary::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("second ack");
    assert_eq!(ack, Frame::Ack { seq: 16, count: 8 });

    // The binary barrier: Sync → Synced proves both batches applied.
    b.write_all(&binary::encode_sync()).unwrap();
    let f = binary::read_frame(&mut b, binary::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("synced");
    assert_eq!(f, Frame::Synced);

    // The plane gauges see one connection per plane (plus client `j`).
    let v = j.call(r#"{"cmd":"stats"}"#);
    assert!(ok(&v), "{v}");
    let server = v.get("server").unwrap();
    assert_eq!(
        server.get("conns_binary").and_then(Json::as_u64),
        Some(1),
        "{server}"
    );
    assert_eq!(
        server.get("conns_open").and_then(Json::as_u64),
        Some(2),
        "{server}"
    );

    // State equivalence across planes, observed through JSONL: one
    // store holds both planes' visitors.
    let v = j.call(&event(4_000_000, "drain", "attic"));
    assert!(ok(&v));
    let v = j.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");
    let v = j.call(r#"{"cmd":"query","q":"select ?v where { ?v room \"vault\" }"}"#);
    assert!(ok(&v), "{v}");
    assert_eq!(
        v.get("rows").and_then(Json::as_array).unwrap().len(),
        16,
        "8 binary + 8 JSONL visitors in one store: {v}"
    );

    handle.shutdown();
}

/// A binary frame whose declared length exceeds `--max-frame-bytes`
/// is answered with a structured `Err` frame and the connection is
/// closed — after an oversize or corrupt header the frame boundary is
/// unknowable, so resync is impossible by design.
#[test]
fn binary_oversize_frame_gets_structured_error_then_close() {
    use fenestra::wire::binary::{self, Frame};
    use std::io::Write as _;

    let config = ServerConfig::new("127.0.0.1:0").max_frame_bytes(1024);
    let mut handle = Server::start(config).expect("start server");

    let mut b = TcpStream::connect(handle.local_addr()).expect("connect binary");
    b.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    b.write_all(&binary::MAGIC).unwrap();
    // A hand-built header declaring a 2 MiB payload; the server must
    // reject it from the length prefix alone, before buffering it.
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&(2u32 * 1024 * 1024).to_be_bytes());
    hdr.extend_from_slice(&0u32.to_be_bytes());
    b.write_all(&hdr).unwrap();

    let f = binary::read_frame(&mut b, binary::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("error frame before close");
    match f {
        Frame::Err { seq: 0, ref msg } => {
            assert!(msg.contains("frame too large"), "{msg}")
        }
        other => panic!("expected Err frame, got {other:?}"),
    }
    assert!(
        binary::read_frame(&mut b, binary::DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none(),
        "server closes a connection whose framing is lost"
    );
    handle.shutdown();
}

/// A JSONL line beyond `--max-frame-bytes` is discarded with an error
/// line — but JSONL framing survives oversize input (the newline is
/// the resync point), so the connection keeps working.
#[test]
fn jsonl_overlong_line_discarded_connection_survives() {
    let config = ServerConfig::new("127.0.0.1:0").max_frame_bytes(1024);
    let mut handle = Server::start(config).expect("start server");
    let mut c = Client::connect(handle.local_addr());

    let big = format!(
        r#"{{"stream":"sensors","ts":1,"visitor":"x","pad":"{}"}}"#,
        "x".repeat(4096)
    );
    c.send(&big);
    let v = c.recv();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v}");
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("frame too large"),
        "{v}"
    );
    // Resynced at the newline: the next line is handled normally.
    let v = c.call(&event(10, "a", "hall"));
    assert!(ok(&v), "{v}");
    assert_eq!(v.get("seq").and_then(Json::as_u64), Some(1), "{v}");
    handle.shutdown();
}

#[test]
fn watch_rejects_history_queries() {
    let mut handle = Server::start(ServerConfig::new("127.0.0.1:0")).unwrap();
    let mut c = Client::connect(handle.local_addr());
    let v = c.call(r#"{"cmd":"watch","name":"h","q":"history a room"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v}");
    handle.shutdown();
}
