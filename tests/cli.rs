//! CLI integration tests: drive the `fenestra` binary end-to-end.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_fenestra")
}

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("fenestra-cli-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn demo_runs() {
    let out = Command::new(bin()).arg("demo").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("?v=alice"));
    assert!(stdout.contains("[t10, t20)"));
}

#[test]
fn run_then_query_snapshot() {
    let dir = tmpdir();
    let rules = dir.join("rules.fen");
    let events = dir.join("events.jsonl");
    let state = dir.join("state.json");
    std::fs::write(
        &rules,
        "rule mv:\n  on sensors\n  replace $(visitor).room = room\n",
    )
    .unwrap();
    std::fs::write(
        &events,
        r#"{"stream":"sensors","ts":10,"visitor":"v1","room":"a"}
{"stream":"sensors","ts":20,"visitor":"v1","room":"b"}
{"stream":"sensors","ts":30,"visitor":"v2","room":"a"}
"#,
    )
    .unwrap();

    let out = Command::new(bin())
        .args([
            "run",
            "--rules",
            rules.to_str().unwrap(),
            "--events",
            events.to_str().unwrap(),
            "--attr",
            "room:one",
            "--save",
            state.to_str().unwrap(),
            "--query",
            r#"select ?v where { ?v room "a" }"#,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("?v=v2"), "{stdout}");
    assert!(stdout.contains("(1 row(s))"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("3 transitions"), "{stderr}");

    // Query the snapshot, including history.
    let out = Command::new(bin())
        .args([
            "query",
            "--state",
            state.to_str().unwrap(),
            "history v1 room",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(2 interval(s))"), "{stdout}");

    let out = Command::new(bin())
        .args([
            "query",
            "--state",
            state.to_str().unwrap(),
            r#"select ?v ?r where { ?v room ?r } asof 15"#,
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("?r=\"a\""), "{stdout}");
    assert!(stdout.contains("(1 row(s))"), "{stdout}");
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = Command::new(bin())
        .args(["run", "--rules", "/nonexistent", "--events", "/nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = Command::new(bin())
        .args([
            "query",
            "--state",
            "/nonexistent",
            "select ?x where { ?x a 1 }",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = Command::new(bin()).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn run_with_ontology() {
    let dir = tmpdir();
    let rules = dir.join("cls.fen");
    let events = dir.join("catalog.jsonl");
    let ont = dir.join("taxonomy.ont");
    std::fs::write(
        &rules,
        "rule cls:\n  on catalog\n  replace $(product).type = class\n",
    )
    .unwrap();
    std::fs::write(
        &events,
        r#"{"stream":"catalog","ts":1,"product":"p1","class":"toy_cars"}
{"stream":"catalog","ts":2,"product":"p2","class":"books"}
"#,
    )
    .unwrap();
    std::fs::write(
        &ont,
        "class toy_cars < toys\nclass toys < products\nclass books < products\n",
    )
    .unwrap();
    let out = Command::new(bin())
        .args([
            "run",
            "--rules",
            rules.to_str().unwrap(),
            "--events",
            events.to_str().unwrap(),
            "--ontology",
            ont.to_str().unwrap(),
            "--query",
            r#"select ?p where { ?p type "products" }"#,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("(2 row(s))"),
        "derived memberships: {stdout}"
    );
}

#[test]
fn inspect_summarizes_snapshot() {
    let dir = tmpdir();
    let rules = dir.join("r2.fen");
    let events = dir.join("e2.jsonl");
    let state = dir.join("s2.json");
    std::fs::write(&rules, "rule mv:\n on sensors\n replace $(v).room = room\n").unwrap();
    std::fs::write(
        &events,
        "{\"stream\":\"sensors\",\"ts\":1,\"v\":\"a\",\"room\":\"x\"}\n{\"stream\":\"sensors\",\"ts\":2,\"v\":\"a\",\"room\":\"y\"}\n",
    )
    .unwrap();
    let ok = Command::new(bin())
        .args([
            "run",
            "--rules",
            rules.to_str().unwrap(),
            "--events",
            events.to_str().unwrap(),
            "--save",
            state.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(ok.success());
    let out = Command::new(bin())
        .args(["inspect", "--state", state.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("named entities:   1"), "{stdout}");
    assert!(stdout.contains("open facts:       1"), "{stdout}");
    assert!(stdout.contains("room"), "{stdout}");
}
