//! End-to-end integration tests: the paper's three scenarios run
//! through the full engine, scored against workload oracles.

use fenestra::prelude::*;
use fenestra::workloads::{
    BuildingConfig, BuildingWorkload, ClickstreamConfig, ClickstreamWorkload, EcommerceConfig,
    EcommerceWorkload,
};
use std::collections::HashMap;

/// §1 scenario 1: explicit state recovers every session exactly.
#[test]
fn clickstream_sessions_match_oracle_exactly() {
    let workload = ClickstreamWorkload::generate(&ClickstreamConfig {
        users: 20,
        sessions: 100,
        ..Default::default()
    });
    let mut engine = Engine::with_defaults();
    engine.declare_attr("status", AttrSchema::one());
    engine
        .add_rules_text(
            r#"
            rule enter:
              on clicks where action == "enter"
              replace $(user).status = "active"
            rule leave:
              on clicks where action == "leave"
              if state($(user)).status == "active"
              retract $(user).status = "active"
            "#,
        )
        .unwrap();
    engine.run(workload.events.iter().cloned());
    engine.finish();

    let store = engine.store();
    let mut matched = 0;
    for s in &workload.sessions {
        let u = store.lookup_entity(s.user.as_str()).expect("user exists");
        let found = store
            .history(u, "status")
            .iter()
            .any(|(iv, _, _)| iv.start == s.start && iv.end == Some(s.end));
        if found {
            matched += 1;
        }
    }
    assert_eq!(matched, workload.sessions.len(), "every session exact");
}

/// §1 scenario 2: windows contradict, state never does.
#[test]
fn building_state_has_zero_contradictions() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 15,
        rooms: 8,
        mean_dwell_ms: 30_000,
        duration_ms: 900_000,
        seed: 3,
    });
    let mut engine = Engine::with_defaults();
    engine.declare_attr("room", AttrSchema::one());
    engine
        .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
        .unwrap();
    engine.run(workload.events.iter().cloned());
    engine.finish();

    let store = engine.store();
    // At every probe instant, each visitor has at most one valid room,
    // and it matches the oracle.
    for probe in (0..900_000u64).step_by(90_000) {
        let t = Timestamp::new(probe);
        let view = store.as_of(t);
        for v in 0..15 {
            let name = format!("v{v}");
            let Some(e) = store.lookup_entity(name.as_str()) else {
                continue;
            };
            let rooms = view.values(e, "room");
            assert!(rooms.len() <= 1, "contradiction at {t} for {name}");
            let truth = workload.true_room_at(&name, t);
            let got = rooms.first().and_then(|r| r.as_str());
            assert_eq!(got, truth, "wrong room at {t} for {name}");
        }
    }

    // Window-based baseline on the same trace DOES contradict: count
    // visitors with >1 room inside a 5-minute window.
    let window = 300_000u64;
    let probe = Timestamp::new(600_000);
    let mut rooms_in_window: HashMap<&str, Vec<&str>> = HashMap::new();
    for ev in &workload.events {
        if ev.ts <= probe && ev.ts.millis() + window > probe.millis() {
            rooms_in_window
                .entry(ev.get("visitor").unwrap().as_str().unwrap())
                .or_default()
                .push(ev.get("room").unwrap().as_str().unwrap());
        }
    }
    let contradicted = rooms_in_window.values().filter(|r| r.len() > 1).count();
    assert!(
        contradicted > 0,
        "the windowed view should exhibit the paper's contradiction"
    );
}

/// §3.1 case study: the stream–state join classifies every sale
/// correctly; a windowed join misclassifies (or drops) stale products.
#[test]
fn ecommerce_state_join_beats_window_join() {
    let workload = EcommerceWorkload::generate(&EcommerceConfig {
        products: 60,
        classes: 5,
        sales: 800,
        reclass_prob: 0.05,
        ..Default::default()
    });

    // --- explicit state path ---
    let mut engine = Engine::with_defaults();
    engine.declare_attr("class", AttrSchema::one());
    engine
        .add_rules_text("rule cls:\n on catalog\n replace $(product).class = class")
        .unwrap();
    let store = engine.shared_store();
    let mut g = Graph::new();
    let enrich = g.add_op(StateEnrich::new(store, "product").attr("class", "class"));
    g.connect_source("sales", enrich);
    let sink = g.add_sink();
    g.connect(enrich, sink.node);
    engine.set_graph(g).unwrap();
    engine.run(workload.events.iter().cloned());
    engine.finish();
    let enriched = sink.take();
    assert_eq!(enriched.len(), workload.sale_count);
    let mut correct = 0;
    for e in &enriched {
        let p = e.get("product").unwrap().as_str().unwrap();
        let truth = workload.true_class_at(p, e.ts).unwrap();
        if e.get("class").unwrap().as_str() == Some(truth) {
            correct += 1;
        }
    }
    assert_eq!(correct, enriched.len(), "state join: zero misclassified");

    // --- window-join baseline ---
    let mut g = Graph::new();
    let join = g.add_op(WindowJoin::new(
        "sales",
        "product",
        "catalog",
        "product",
        Duration::secs(10),
    ));
    g.connect_source("sales", join);
    g.connect_source("catalog", join);
    let sink = g.add_sink();
    g.connect(join, sink.node);
    let mut ex = Executor::new(g);
    ex.run(workload.events.iter().cloned());
    ex.finish();
    let joined = sink.take();
    // Sales whose classification left the window never join.
    assert!(
        joined.len() < workload.sale_count,
        "window join must drop stale-classified sales ({} vs {})",
        joined.len(),
        workload.sale_count
    );
}

/// Queryable-state deliverable: as-of answers equal a replayed store's
/// current answers at that instant.
#[test]
fn as_of_equals_replay_prefix() {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 8,
        rooms: 5,
        mean_dwell_ms: 20_000,
        duration_ms: 400_000,
        seed: 5,
    });
    let mut engine = Engine::with_defaults();
    engine.declare_attr("room", AttrSchema::one());
    engine
        .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
        .unwrap();
    engine.run(workload.events.iter().cloned());
    engine.finish();

    let probe = Timestamp::new(200_000);
    let store = engine.store();
    // Replay baseline: rebuild a store from only the events <= probe.
    let mut replay_engine = Engine::with_defaults();
    replay_engine.declare_attr("room", AttrSchema::one());
    replay_engine
        .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
        .unwrap();
    replay_engine.run(workload.events.iter().filter(|e| e.ts <= probe).cloned());
    replay_engine.finish();
    let replayed = replay_engine.store();

    for v in 0..8 {
        let name = format!("v{v}");
        let full = store
            .lookup_entity(name.as_str())
            .map(|e| store.as_of(probe).value(e, "room"));
        let replay = replayed
            .lookup_entity(name.as_str())
            .map(|e| replayed.current().value(e, "room"));
        assert_eq!(full.flatten(), replay.flatten(), "mismatch for {name}");
    }
}
