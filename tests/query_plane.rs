//! The planner query plane end to end: legacy statements and the SQL
//! dialect compile to the same plans, replies stay byte-identical
//! across repeated (cached) dispatches, `EXPLAIN` shows predicate
//! pushdown reaching the shard fan-out, fan-out results match the
//! single-shard server, and the plan cache is visible through `stats`
//! and the Prometheus listener.

use fenestra::base::time::Duration;
use fenestra::core::EngineConfig;
use fenestra::server::{Server, ServerConfig, ServerHandle};
use fenestra::temporal::AttrSchema;
use serde_json::Value as Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

struct Client {
    out: TcpStream,
    lines: std::io::Lines<BufReader<TcpStream>>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let out = TcpStream::connect(addr).expect("connect");
        out.set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        let lines = BufReader::new(out.try_clone().unwrap()).lines();
        Client { out, lines }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.out, "{line}").expect("send");
    }

    /// Round-trip one request, returning the raw reply line (for
    /// byte-identity assertions).
    fn call_raw(&mut self, line: &str) -> String {
        self.send(line);
        self.lines
            .next()
            .expect("connection closed early")
            .expect("read")
    }

    fn recv(&mut self) -> Json {
        let line = self
            .lines
            .next()
            .expect("connection closed early")
            .expect("read");
        serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad reply `{line}`: {e}"))
    }

    /// Round-trip one request, parsed.
    fn call(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

/// Start a server with `shards` shards, the visitor→room rule, and a
/// populated store: a0–a4 in the lab, b0–b4 in the lobby (ts
/// 1000–1009), plus a far-future event that opens a second window for
/// the tumbling-aggregation queries. Zero lateness (the default) so
/// every shard applies its events immediately; the trailing sync
/// proves it.
fn populated_server(shards: u32) -> ServerHandle {
    let config = ServerConfig::new("127.0.0.1:0")
        .shards(shards)
        .metrics_addr("127.0.0.1:0")
        .engine(EngineConfig {
            max_lateness: Duration::millis(0),
            ..EngineConfig::default()
        })
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let handle = Server::start(config).expect("start server");
    let mut c = Client::connect(handle.local_addr());
    for i in 0..10u64 {
        let (prefix, room) = if i < 5 { ("a", "lab") } else { ("b", "lobby") };
        let v = c.call(&format!(
            r#"{{"stream":"sensors","ts":{},"visitor":"{prefix}{}","room":"{room}"}}"#,
            1000 + i,
            i % 5
        ));
        assert!(ok(&v), "{v}");
    }
    let v = c.call(r#"{"stream":"sensors","ts":4000000,"visitor":"alice","room":"attic"}"#);
    assert!(ok(&v), "{v}");
    let v = c.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");
    handle
}

/// A reply's rows as a sorted multiset of rendered objects, so row
/// order and binding names don't matter when comparing dialects.
fn row_values(v: &Json) -> Vec<String> {
    let rows = v
        .get("rows")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("no rows in {v}"));
    let mut out: Vec<String> = rows
        .iter()
        .map(|row| {
            let mut vals: Vec<String> = row
                .as_object()
                .unwrap()
                .values()
                .map(Json::to_string)
                .collect();
            vals.sort();
            vals.join(",")
        })
        .collect();
    out.sort();
    out
}

#[test]
fn plan_cache_dedupes_and_explain_shows_pushdown() {
    let mut handle = populated_server(1);
    let mut c = Client::connect(handle.local_addr());

    // Legacy select through the plan path: repeated dispatches are
    // byte-identical, and the second is a cache hit.
    let legacy = r#"{"cmd":"query","q":"select ?v where { ?v room \"lab\" }"}"#;
    let first = c.call_raw(legacy);
    let second = c.call_raw(legacy);
    assert_eq!(first, second, "cached dispatch is byte-identical");
    let legacy_rows: Json = serde_json::from_str(&first).unwrap();
    assert_eq!(row_values(&legacy_rows).len(), 5, "{legacy_rows}");

    // The SQL dialect compiles to the same physical plan: same rows
    // (modulo the binding name), accepted under the `sql` key.
    let sql = c.call(r#"{"cmd":"query","sql":"SELECT entity FROM state WHERE room = \"lab\""}"#);
    assert!(ok(&sql), "{sql}");
    assert_eq!(row_values(&sql), row_values(&legacy_rows));

    // EXPLAIN renders both trees and names the rewrites; the pushed
    // constant lands in the pattern.
    let v =
        c.call(r#"{"cmd":"query","sql":"EXPLAIN SELECT entity FROM state WHERE room = \"lab\""}"#);
    assert!(ok(&v), "{v}");
    let explain = v.get("explain").unwrap_or_else(|| panic!("{v}"));
    let rules: Vec<&str> = explain
        .get("rules")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|r| r.as_str().unwrap())
        .collect();
    assert!(rules.contains(&"predicate_pushdown"), "{rules:?}");
    assert_eq!(explain.get("dialect").and_then(Json::as_str), Some("sql"));
    let physical = explain.get("physical").and_then(Json::as_str).unwrap();
    assert!(
        physical.contains(r#"?entity room "lab""#),
        "pushed constant in scan: {physical}"
    );
    assert!(
        physical.contains("filters=[]"),
        "filter absorbed: {physical}"
    );

    // History through the plan path.
    let v = c.call(r#"{"cmd":"query","q":"history a0 room"}"#);
    let spans = v.get("history").and_then(Json::as_array).unwrap();
    assert_eq!(spans.len(), 1, "{v}");
    assert_eq!(spans[0].get("value").and_then(Json::as_str), Some("lab"));

    // Two watches of the statement the queries above compiled share
    // the cached plan: entries don't grow, hits do.
    let stats = c.call(r#"{"cmd":"stats"}"#);
    let plans = stats.get("plans").unwrap_or_else(|| panic!("{stats}"));
    let cache_field = |p: &Json, f: &str| -> u64 {
        p.get("cache")
            .and_then(|c| c.get(f))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("no plans.cache.{f} in {p}"))
    };
    let (hits0, entries0) = (cache_field(plans, "hits"), cache_field(plans, "entries"));
    assert!(
        plans.get("compile_us").is_some_and(Json::is_object),
        "{stats}"
    );
    assert!(plans.get("exec_us").is_some_and(Json::is_object), "{stats}");
    // Each watch acks and then pushes its five initial lab rows;
    // drain acks and deltas (deltas carry a `sign`) before moving on.
    for name in ["w1", "w2"] {
        c.send(&format!(
            r#"{{"cmd":"watch","name":"{name}","q":"select ?v where {{ ?v room \"lab\" }}"}}"#
        ));
    }
    let (mut acks, mut deltas) = (0, 0);
    while acks < 2 || deltas < 10 {
        let v = c.recv();
        if v.get("sign").is_some() {
            deltas += 1;
        } else {
            assert!(v.get("watch").is_some(), "unexpected reply: {v}");
            acks += 1;
        }
    }
    let stats = c.call(r#"{"cmd":"stats"}"#);
    let plans = stats.get("plans").unwrap_or_else(|| panic!("{stats}"));
    assert_eq!(
        cache_field(plans, "entries"),
        entries0,
        "watches reuse the cached plan: {stats}"
    );
    assert!(
        cache_field(plans, "hits") >= hits0 + 2,
        "watch registration hits the cache: {stats}"
    );

    // Unknown commands and frame ops get the structured error.
    let v = c.call(r#"{"cmd":"frobnicate"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    let err = v.get("error").and_then(Json::as_str).unwrap();
    assert!(err.contains("unknown command"), "{v}");
    assert!(
        v.get("supported")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .any(|s| s.as_str() == Some("query")),
        "{v}"
    );
    let v = c.call(r#"{"op":"frobnicate"}"#);
    let err = v.get("error").and_then(Json::as_str).unwrap();
    assert!(err.contains("unknown op"), "{v}");
    assert_eq!(
        v.get("supported").and_then(Json::as_array).unwrap().len(),
        1,
        "{v}"
    );

    handle.shutdown();
}

#[test]
fn sharded_fanout_matches_single_shard() {
    let mut one = populated_server(1);
    let mut four = populated_server(4);
    let mut c1 = Client::connect(one.local_addr());
    let mut c4 = Client::connect(four.local_addr());

    for q in [
        r#"{"cmd":"query","q":"select ?v where { ?v room \"lab\" }"}"#,
        r#"{"cmd":"query","q":"select ?v ?r where { ?v room ?r }"}"#,
        r#"{"cmd":"query","sql":"SELECT entity FROM state WHERE room = \"lobby\""}"#,
        r#"{"cmd":"query","sql":"SELECT entity, room FROM state"}"#,
        r#"{"cmd":"query","sql":"SELECT count(room) AS n FROM state GROUP BY tumbling(60000)"}"#,
    ] {
        let r1 = c1.call(q);
        let r4 = c4.call(q);
        assert!(ok(&r1), "{q}: {r1}");
        assert_eq!(row_values(&r1), row_values(&r4), "{q}");
    }

    // A repeated statement is served from the cache on the sharded
    // server too (visible below on the metrics listener).
    let lab = r#"{"cmd":"query","q":"select ?v where { ?v room \"lab\" }"}"#;
    assert_eq!(
        c4.call_raw(lab),
        c4.call_raw(lab),
        "cached fan-out dispatch"
    );

    // History merges identically (spans ordered by start either way).
    let h = r#"{"cmd":"query","q":"history a3 room"}"#;
    assert_eq!(
        c1.call(h).get("history"),
        c4.call(h).get("history"),
        "history fan-out merge"
    );

    // The sharded EXPLAIN shows the pushed predicate reaching the
    // per-shard partial scans under the merge operator.
    let v =
        c4.call(r#"{"cmd":"query","sql":"EXPLAIN SELECT entity FROM state WHERE room = \"lab\""}"#);
    let physical = v
        .get("explain")
        .and_then(|e| e.get("physical"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{v}"));
    assert!(physical.contains("Merge shards=4"), "{physical}");
    assert!(
        physical.contains(r#"StateScan partial patterns=[?entity room "lab"]"#),
        "pushdown reaches the fan-out: {physical}"
    );

    // Cache traffic is visible on the Prometheus listener.
    let maddr = four.metrics_addr().expect("metrics listener bound");
    let mut m = TcpStream::connect(maddr).expect("connect metrics");
    m.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    write!(m, "GET /metrics HTTP/1.1\r\nHost: fenestra\r\n\r\n").unwrap();
    let mut response = String::new();
    use std::io::Read;
    m.read_to_string(&mut response).expect("read response");
    let body = response.split_once("\r\n\r\n").expect("http body").1;
    let sample = |name: &str| -> u64 {
        body.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in:\n{body}"))
    };
    assert!(sample("fenestra_plan_cache_misses_total") >= 5);
    assert!(
        sample("fenestra_plan_cache_hits_total") >= 1,
        "EXPLAIN warmed the statement it shares with the executed query"
    );
    assert!(sample("fenestra_plan_cache_entries") >= 5);
    assert!(sample("fenestra_plan_exec_us_count") >= 6);

    one.shutdown();
    four.shutdown();
}
