//! Persistence integration: the state repository survives restarts,
//! via JSON snapshots and via the binary WAL.

use fenestra::prelude::*;
use fenestra::temporal::persist;
use fenestra::workloads::{BuildingConfig, BuildingWorkload};

fn populated_engine() -> (Engine, BuildingWorkload) {
    let workload = BuildingWorkload::generate(&BuildingConfig {
        visitors: 8,
        rooms: 5,
        mean_dwell_ms: 15_000,
        duration_ms: 200_000,
        seed: 17,
    });
    let mut engine = Engine::with_defaults();
    engine.declare_attr("room", AttrSchema::one());
    engine
        .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
        .unwrap();
    engine.run(workload.events.iter().cloned());
    engine.finish();
    (engine, workload)
}

#[test]
fn json_snapshot_round_trip_preserves_history_and_queries() {
    let (engine, workload) = populated_engine();
    let dir = std::env::temp_dir().join("fenestra-it-persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.json");
    {
        let store = engine.store();
        persist::save(&store, &path).unwrap();
    }
    let restored = persist::load(&path).unwrap();
    let store = engine.store();
    assert_eq!(restored.stored_fact_count(), store.stored_fact_count());
    assert_eq!(restored.open_fact_count(), store.open_fact_count());
    // Historical queries on the restored store agree with the oracle.
    let probe = Timestamp::new(100_000);
    for v in 0..8 {
        let name = format!("v{v}");
        let Some(e) = restored.lookup_entity(name.as_str()) else {
            continue;
        };
        let got = restored.as_of(probe).value(e, "room");
        let truth = workload.true_room_at(&name, probe).map(Value::str);
        assert_eq!(got, truth, "{name} at {probe}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_wal_round_trip() {
    let (engine, _) = populated_engine();
    let dir = std::env::temp_dir().join("fenestra-it-persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.wal");
    {
        let store = engine.store();
        persist::save_wal(&store, &path).unwrap();
    }
    let restored = persist::load_wal(&path).unwrap();
    let store = engine.store();
    assert_eq!(restored.stored_fact_count(), store.stored_fact_count());
    assert_eq!(restored.revision(), store.revision());
    // WAL is substantially smaller than JSON for the same history.
    let json_len = persist::to_json(&store).unwrap().len();
    let wal_len = std::fs::metadata(&path).unwrap().len() as usize;
    assert!(wal_len < json_len, "binary WAL should be compact");
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_files_are_rejected() {
    let dir = std::env::temp_dir().join("fenestra-it-persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.json");
    std::fs::write(&path, "{\"version\": 1, \"ops\": [{\"bogus\": 1}]}").unwrap();
    assert!(persist::load(&path).is_err());
    let path2 = dir.join("corrupt.wal");
    std::fs::write(&path2, [0xFFu8, 0x01, 0x02]).unwrap();
    assert!(persist::load_wal(&path2).is_err());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}
