//! End-to-end replication and failover tests against real `fenestrad`
//! subprocesses: a leader shipping per-shard WAL segments, a warm
//! follower serving reads and redirecting ingest, `kill -9` on the
//! leader followed by fenced promotion, and the demoted ex-leader
//! rejoining as a follower of the new epoch.

use serde_json::Value as Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The fenestrad binary, built on demand if this test package was
/// compiled without the server package's binaries.
fn fenestrad_bin() -> PathBuf {
    let target_dir = Path::new(env!("CARGO_BIN_EXE_fenestra"))
        .parent()
        .expect("binary dir")
        .to_path_buf();
    let bin = target_dir.join(format!("fenestrad{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut cmd = Command::new(cargo);
        cmd.current_dir(env!("CARGO_MANIFEST_DIR")).args([
            "build",
            "-p",
            "fenestra-server",
            "--bin",
            "fenestrad",
        ]);
        if target_dir.file_name().is_some_and(|n| n == "release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("cargo build fenestrad");
        assert!(status.success(), "building fenestrad failed");
    }
    bin
}

/// A running fenestrad over a state directory, with its announced
/// client address and (when `--replicate` was passed) replication
/// address.
struct Daemon {
    child: Child,
    addr: String,
    repl_addr: Option<String>,
}

impl Daemon {
    /// Spawn over `dir` with a WAL, a snapshot path, durable acks, and
    /// a small rules file (attribute declarations and rules only — the
    /// follower-setup contract). `extra` carries the role flags.
    fn spawn(dir: &Path, extra: &[&str]) -> Daemon {
        let rules = dir.join("rules.txt");
        std::fs::write(&rules, "rule mv:\n on s\n replace $(visitor).room = room\n").unwrap();
        let mut child = Command::new(fenestrad_bin())
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--shards")
            .arg("2")
            .arg("--snapshot")
            .arg(dir.join("state.json"))
            .arg("--wal")
            .arg(dir.join("log"))
            .arg("--fsync")
            .arg("always")
            .arg("--rules")
            .arg(&rules)
            .args(extra)
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn fenestrad");
        let expect_repl = extra.contains(&"--replicate");
        // The daemon announces its bound addresses on stderr, client
        // listener first, replication listener after.
        let stderr = child.stderr.take().unwrap();
        let mut reader = BufReader::new(stderr);
        let mut addr = None;
        let mut repl_addr = None;
        while addr.is_none() || (expect_repl && repl_addr.is_none()) {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "fenestrad exited before announcing its addresses"
            );
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("fenestrad: listening on ") {
                addr = Some(rest.to_string());
            }
            if let Some(rest) = line.strip_prefix("fenestrad: serving replication to followers on ")
            {
                repl_addr = Some(rest.to_string());
            }
        }
        // Keep draining stderr so the child never blocks on a full
        // pipe.
        std::thread::spawn(move || {
            for line in reader.lines() {
                if line.is_err() {
                    break;
                }
            }
        });
        Daemon {
            child,
            addr: addr.unwrap(),
            repl_addr,
        }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect to fenestrad");
        let reader = BufReader::new(stream.try_clone().unwrap());
        Conn { stream, reader }
    }

    /// SIGKILL — no drain, no snapshot, no farewell to followers.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9 fenestrad");
        self.child.wait().expect("reap fenestrad");
    }

    fn shutdown(mut self) {
        let mut c = self.connect();
        let v = c.call(r#"{"cmd":"shutdown"}"#);
        assert!(v.get("bye").is_some(), "graceful shutdown: {v}");
        self.child.wait().expect("reap fenestrad");
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        assert!(self.reader.read_line(&mut line).unwrap() > 0, "EOF");
        serde_json::from_str(line.trim()).expect("reply is JSON")
    }

    fn call(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fenestra-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Ingest `n` events (each moves a fresh visitor into a room), read
/// every durable ack, then issue a `sync` barrier.
fn ingest_acked(c: &mut Conn, n: u64) {
    for i in 1..=n {
        c.send(&format!(
            r#"{{"stream":"s","ts":{i},"visitor":"v{i}","room":"r{i}"}}"#
        ));
    }
    for i in 1..=n {
        let v = c.recv();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "ack {i}: {v}"
        );
    }
    let v = c.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");
}

fn occupied_rooms(c: &mut Conn) -> usize {
    let v = c.call(r#"{"cmd":"query","q":"select ?v ?r where { ?v room ?r }"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    v.get("rows").and_then(Json::as_array).unwrap().len()
}

/// Poll the daemon until its queryable state holds `n` occupied rooms
/// (replication is asynchronous; the ship→apply lag is the wait).
fn wait_rows(daemon: &Daemon, n: usize, why: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut last = usize::MAX;
    while Instant::now() < deadline {
        let mut c = daemon.connect();
        last = occupied_rooms(&mut c);
        if last == n {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("{why}: wanted {n} rows, follower converged to {last}");
}

fn repl_stat(stats: &Json, key: &str) -> u64 {
    stats
        .get("replication")
        .and_then(|r| r.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing replication.{key} in {stats}"))
}

/// Ingest one event and return the raw ack line (ok or error).
fn ingest_one(c: &mut Conn, ts: u64) -> Json {
    c.call(&format!(
        r#"{{"stream":"s","ts":{ts},"visitor":"v{ts}","room":"r{ts}"}}"#
    ))
}

/// Poll the leader's stats until `replication.followers` reaches `n` —
/// i.e. a shipping session is live and coverage claims can arrive.
fn wait_followers(c: &mut Conn, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = c.call(r#"{"cmd":"stats"}"#);
        if repl_stat(&s, "followers") >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "no follower session registered: {s}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A warm follower mirrors the leader's WAL, serves queries locally,
/// redirects ingest to the leader, and reports its role in `stats`.
#[test]
fn follower_serves_reads_and_redirects_ingest() {
    let ldir = tmp_dir("reads-leader");
    let fdir = tmp_dir("reads-follower");
    const N: u64 = 25;

    let leader = Daemon::spawn(&ldir, &["--replicate", "127.0.0.1:0"]);
    let repl = leader.repl_addr.clone().unwrap();
    let follower = Daemon::spawn(&fdir, &["--follow", &repl]);

    let mut lc = leader.connect();
    ingest_acked(&mut lc, N);
    wait_rows(&follower, N as usize, "follower catches up");

    let mut fc = follower.connect();
    // Ingest on the follower is refused with a redirect to the leader.
    let v = fc.call(r#"{"stream":"s","ts":99,"visitor":"vx","room":"rx"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v}");
    assert_eq!(
        v.get("redirect").and_then(Json::as_str),
        Some(repl.as_str()),
        "{v}"
    );
    // Roles and counters: the follower applied shipped frames, the
    // leader shipped them.
    let fs = fc.call(r#"{"cmd":"stats"}"#);
    assert_eq!(
        fs.get("replication")
            .and_then(|r| r.get("role"))
            .and_then(Json::as_str),
        Some("follower"),
        "{fs}"
    );
    assert!(repl_stat(&fs, "applied_ops") >= N, "{fs}");
    let ls = lc.call(r#"{"cmd":"stats"}"#);
    assert!(repl_stat(&ls, "ship_bytes") > 0, "{ls}");
    assert_eq!(repl_stat(&ls, "followers"), 1, "{ls}");

    follower.shutdown();
    leader.shutdown();
}

/// The failover drill: `kill -9` the leader after durably-acked
/// ingest, promote the follower, and verify every acked event is
/// queryable on the new leader — which now takes writes under a bumped
/// fencing epoch. The demoted ex-leader then rejoins as a follower of
/// the new epoch and converges on the same state.
#[test]
fn kill9_leader_failover_loses_no_acked_events() {
    let ldir = tmp_dir("failover-leader");
    let fdir = tmp_dir("failover-follower");
    const N: u64 = 40;

    // `--snapshot-every-ms` makes the leader rotate segments mid-run,
    // so the follower exercises the Rotate path, not just appends.
    let leader = Daemon::spawn(
        &ldir,
        &["--replicate", "127.0.0.1:0", "--snapshot-every-ms", "150"],
    );
    let repl = leader.repl_addr.clone().unwrap();
    // The follower also listens for followers of its own, so the
    // ex-leader can rejoin after the failover.
    let follower = Daemon::spawn(&fdir, &["--follow", &repl, "--replicate", "127.0.0.1:0"]);

    let mut lc = leader.connect();
    ingest_acked(&mut lc, N);
    wait_rows(
        &follower,
        N as usize,
        "follower catches up before the crash",
    );

    leader.kill9();

    let mut fc = follower.connect();
    let v = fc.call(r#"{"cmd":"promote"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    let epoch = v.get("epoch").and_then(Json::as_u64).unwrap();
    assert!(epoch >= 1, "promotion bumps the epoch: {v}");

    // Nothing durably acked on the old leader is missing.
    assert_eq!(occupied_rooms(&mut fc), N as usize, "acked events survive");
    // The promoted node takes writes now (no redirect).
    let ts = N + 1;
    let v = fc.call(&format!(
        r#"{{"stream":"s","ts":{ts},"visitor":"v{ts}","room":"r{ts}"}}"#
    ));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    let v = fc.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(occupied_rooms(&mut fc), N as usize + 1);
    let fs = fc.call(r#"{"cmd":"stats"}"#);
    assert_eq!(
        fs.get("replication")
            .and_then(|r| r.get("role"))
            .and_then(Json::as_str),
        Some("leader"),
        "{fs}"
    );
    assert_eq!(repl_stat(&fs, "epoch"), epoch, "{fs}");

    // The ex-leader rejoins from its stale directory as a follower of
    // the promoted node: its epoch-0 resume positions cannot splice
    // into the post-promotion lineage, so it is re-bootstrapped, adopts
    // the new epoch, and converges — including the post-failover write
    // it never saw as leader.
    let new_repl = follower.repl_addr.clone().unwrap();
    let rejoined = Daemon::spawn(&ldir, &["--follow", &new_repl]);
    wait_rows(&rejoined, N as usize + 1, "ex-leader converges as follower");
    let mut rc = rejoined.connect();
    let rs = rc.call(r#"{"cmd":"stats"}"#);
    assert_eq!(
        repl_stat(&rs, "epoch"),
        epoch,
        "adopted the new epoch: {rs}"
    );

    rejoined.shutdown();
    follower.shutdown();
}

/// With `--sync-replicas 1` an ack is a two-node durability claim:
/// while no follower is attached every ack times out with an error (the
/// events stay durable locally), and once a follower covers the WAL
/// bytes acks go back to `ok`.
#[test]
fn sync_acks_require_follower_coverage() {
    let ldir = tmp_dir("sync-leader");
    let fdir = tmp_dir("sync-follower");

    let leader = Daemon::spawn(
        &ldir,
        &[
            "--replicate",
            "127.0.0.1:0",
            "--sync-replicas",
            "1",
            "--sync-timeout-ms",
            "300",
        ],
    );
    let mut lc = leader.connect();

    // No follower: the durable ack waits out the sync timeout and then
    // fails, telling the client exactly what it still has.
    let v = ingest_one(&mut lc, 1);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v}");
    let err = v.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(
        err.contains("sync replication timed out"),
        "error names the sync timeout: {v}"
    );

    // Attach a follower; once its shipping session is live, new ingest
    // is covered within the timeout and acks succeed again.
    let repl = leader.repl_addr.clone().unwrap();
    let follower = Daemon::spawn(&fdir, &["--follow", &repl]);
    wait_followers(&mut lc, 1);
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut ts = 2;
    loop {
        let v = ingest_one(&mut lc, ts);
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "acks never recovered after the follower attached: {v}"
        );
        ts += 1;
    }

    let s = lc.call(r#"{"cmd":"stats"}"#);
    assert!(repl_stat(&s, "sync_acks_timeout") >= 1, "{s}");
    assert!(repl_stat(&s, "sync_acks_ok") >= 1, "{s}");
    assert_eq!(repl_stat(&s, "sync_acks_fallback"), 0, "{s}");

    follower.shutdown();
    leader.shutdown();
}

/// `--sync-fallback` trades the hard failure for availability: with no
/// follower the ack still waits out the timeout, then releases as a
/// plain locally-durable ack and counts the degradation.
#[test]
fn sync_fallback_releases_acks_without_coverage() {
    let dir = tmp_dir("sync-fallback");

    let leader = Daemon::spawn(
        &dir,
        &[
            "--replicate",
            "127.0.0.1:0",
            "--sync-replicas",
            "1",
            "--sync-timeout-ms",
            "150",
            "--sync-fallback",
        ],
    );
    let mut lc = leader.connect();
    ingest_acked(&mut lc, 5);

    let s = lc.call(r#"{"cmd":"stats"}"#);
    assert!(repl_stat(&s, "sync_acks_fallback") >= 1, "{s}");
    assert_eq!(repl_stat(&s, "sync_acks_timeout"), 0, "{s}");

    leader.shutdown();
}

/// The loss window this mode closes: `kill -9` the sync leader the
/// instant the last ack lands — no convergence wait, no sync barrier on
/// the follower — and every acked event must already be on the
/// promoted follower. Under async replication this exact sequence can
/// lose the tail (acked locally, killed before shipping); under
/// `--sync-replicas 1` the ack itself proves follower coverage.
#[test]
fn kill9_sync_leader_immediately_after_acks_loses_nothing() {
    let ldir = tmp_dir("sync-kill-leader");
    let fdir = tmp_dir("sync-kill-follower");
    const N: u64 = 30;

    let leader = Daemon::spawn(
        &ldir,
        &[
            "--replicate",
            "127.0.0.1:0",
            "--sync-replicas",
            "1",
            "--sync-timeout-ms",
            "5000",
            "--snapshot-every-ms",
            "150",
        ],
    );
    let repl = leader.repl_addr.clone().unwrap();
    let follower = Daemon::spawn(&fdir, &["--follow", &repl]);

    let mut lc = leader.connect();
    wait_followers(&mut lc, 1);
    ingest_acked(&mut lc, N);
    // Every ack above carried follower coverage; kill the leader NOW,
    // with zero grace for any still-unshipped bytes.
    leader.kill9();

    let mut fc = follower.connect();
    let v = fc.call(r#"{"cmd":"promote"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(
        occupied_rooms(&mut fc),
        N as usize,
        "synchronously acked events survive an immediate kill -9"
    );

    follower.shutdown();
}

/// Promotion is idempotent and fenced exactly once: promoting an
/// already-promoted node is a refused no-op (same epoch, no second
/// lineage), and the node keeps serving reads and taking writes.
#[test]
fn promotion_is_idempotent_and_refused_on_a_leader() {
    let ldir = tmp_dir("idem-leader");
    let fdir = tmp_dir("idem-follower");
    const N: u64 = 10;

    let leader = Daemon::spawn(&ldir, &["--replicate", "127.0.0.1:0"]);
    // A leader that never followed refuses promotion outright.
    let mut lc = leader.connect();
    let v = lc.call(r#"{"cmd":"promote"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v}");

    let repl = leader.repl_addr.clone().unwrap();
    let follower = Daemon::spawn(&fdir, &["--follow", &repl]);
    ingest_acked(&mut lc, N);
    wait_rows(&follower, N as usize, "follower catches up");
    leader.kill9();

    let mut fc = follower.connect();
    let v = fc.call(r#"{"cmd":"promote"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    let epoch = v.get("epoch").and_then(Json::as_u64).unwrap();

    // Second promote: refused, and the epoch did not move again.
    let v = fc.call(r#"{"cmd":"promote"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v}");
    assert_eq!(
        v.get("error").and_then(Json::as_str),
        Some("not a follower: this node is already the leader"),
        "{v}"
    );
    let s = fc.call(r#"{"cmd":"stats"}"#);
    assert_eq!(repl_stat(&s, "epoch"), epoch, "no double epoch bump: {s}");

    // Still a functioning leader after the refused re-promotion.
    assert_eq!(occupied_rooms(&mut fc), N as usize);
    let ts = N + 1;
    let v = ingest_one(&mut fc, ts);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");

    follower.shutdown();
}
